/**
 * @file
 * Tests for the SVD-softmax baseline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/svd_softmax.h"
#include "screening/metrics.h"
#include "tensor/topk.h"
#include "workloads/synthetic.h"

namespace enmc::baselines {
namespace {

class SvdSoftmaxTest : public ::testing::Test
{
  protected:
    SvdSoftmaxTest()
        : model_(makeConfig())
    {
        Rng data = model_.makeRng(3);
        eval_ = model_.sampleHiddenBatch(data, 16);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 256;
        cfg.hidden = 32;
        return cfg;
    }

    workloads::SyntheticModel model_;
    std::vector<tensor::Vector> eval_;
};

TEST_F(SvdSoftmaxTest, FullWindowIsExact)
{
    SvdSoftmaxConfig cfg;
    cfg.window = 32; // == d: preview is the complete product
    cfg.top_n = 1;
    SvdSoftmax svd(model_.classifier(), cfg);
    for (const auto &h : eval_) {
        const auto r = svd.infer(h);
        const auto ref = model_.classifier().logits(h);
        for (size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(r.logits[i], ref[i], 2e-2f) << "logit " << i;
    }
}

TEST_F(SvdSoftmaxTest, RefinedCandidatesAreExact)
{
    SvdSoftmaxConfig cfg;
    cfg.window = 8;
    cfg.top_n = 12;
    SvdSoftmax svd(model_.classifier(), cfg);
    const auto r = svd.infer(eval_[0]);
    const auto ref = model_.classifier().logits(eval_[0]);
    EXPECT_EQ(r.candidates.size(), 12u);
    for (uint32_t c : r.candidates)
        EXPECT_NEAR(r.logits[c], ref[c], 2e-2f);
}

TEST_F(SvdSoftmaxTest, DefaultWindowIsQuarter)
{
    SvdSoftmax svd(model_.classifier(), SvdSoftmaxConfig{});
    EXPECT_EQ(svd.window(), 8u); // d/4
}

/** Fig.-11-style property: wider preview window -> better agreement. */
class WindowSweep : public SvdSoftmaxTest,
                    public ::testing::WithParamInterface<size_t>
{
};

TEST_P(WindowSweep, AgreementImprovesWithWindow)
{
    const size_t w = GetParam();
    SvdSoftmaxConfig small_cfg;
    small_cfg.window = w;
    small_cfg.top_n = 8;
    SvdSoftmaxConfig big_cfg;
    big_cfg.window = std::min<size_t>(w * 4, 32);
    big_cfg.top_n = 8;
    SvdSoftmax small(model_.classifier(), small_cfg);
    SvdSoftmax big(model_.classifier(), big_cfg);

    auto agreement = [&](const SvdSoftmax &s) {
        double agree = 0.0;
        for (const auto &h : eval_) {
            const auto approx = s.infer(h);
            const auto ref = model_.classifier().logits(h);
            agree += (tensor::argmax(approx.logits) == tensor::argmax(ref));
        }
        return agree / eval_.size();
    };
    EXPECT_GE(agreement(big) + 1e-9, agreement(small));
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweep, ::testing::Values(2, 4, 8));

TEST_F(SvdSoftmaxTest, CostScalesWithWindow)
{
    SvdSoftmaxConfig narrow;
    narrow.window = 4;
    SvdSoftmaxConfig wide;
    wide.window = 16;
    SvdSoftmax a(model_.classifier(), narrow);
    SvdSoftmax b(model_.classifier(), wide);
    EXPECT_LT(a.inferenceCost().bytes_read, b.inferenceCost().bytes_read);
    EXPECT_LT(a.inferenceCost().flops, b.inferenceCost().flops);
}

TEST_F(SvdSoftmaxTest, CostCheaperThanFullClassification)
{
    SvdSoftmax svd(model_.classifier(), SvdSoftmaxConfig{});
    const uint64_t full_bytes = model_.classifier().parameterBytes();
    EXPECT_LT(svd.inferenceCost().bytes_read, full_bytes);
}

TEST_F(SvdSoftmaxTest, PreviewTraffic4xOfInt4Screening)
{
    // The paper: "the computation overhead of SVD-based approximation is
    // 4x more than ours". FP32 preview at window w = k costs 4x the INT4
    // screening bytes at the same reduced dimension (modulo the d x d
    // rotation).
    const size_t l = 256, d = 32, k = 8;
    SvdSoftmaxConfig cfg;
    cfg.window = k;
    SvdSoftmax svd(model_.classifier(), cfg);
    const uint64_t svd_preview_bytes = l * k * sizeof(float);
    const uint64_t as_screen_bytes = l * k / 2; // INT4
    EXPECT_EQ(svd_preview_bytes / as_screen_bytes, 8u);
    (void)d;
    EXPECT_GE(svd.inferenceCost().bytes_read, svd_preview_bytes);
}

TEST(SvdSoftmaxDeathTest, BadWindowRejected)
{
    workloads::SyntheticConfig mc;
    mc.categories = 64;
    mc.hidden = 16;
    workloads::SyntheticModel model(mc);
    SvdSoftmaxConfig cfg;
    cfg.window = 17; // > d
    EXPECT_DEATH(SvdSoftmax(model.classifier(), cfg), "window");
}

} // namespace
} // namespace enmc::baselines
