/**
 * @file
 * Tests for the FGD graph-search baseline.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "baselines/fgd.h"
#include "tensor/topk.h"
#include "workloads/synthetic.h"

namespace enmc::baselines {
namespace {

class FgdTest : public ::testing::Test
{
  protected:
    FgdTest()
        : model_(makeConfig())
    {
        Rng data = model_.makeRng(5);
        eval_ = model_.sampleHiddenBatch(data, 24);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 32;
        return cfg;
    }

    workloads::SyntheticModel model_;
    std::vector<tensor::Vector> eval_;
};

TEST_F(FgdTest, SearchReturnsRequestedCount)
{
    Fgd fgd(model_.classifier(), FgdConfig{});
    uint64_t visited = 0;
    const auto top = fgd.search(eval_[0], 10, &visited);
    EXPECT_EQ(top.size(), 10u);
    EXPECT_GT(visited, 10u);
    EXPECT_LT(visited, 512u); // must not degenerate to linear scan
}

TEST_F(FgdTest, CandidateLogitsExactTailKeepsBias)
{
    FgdConfig cfg;
    cfg.top_n = 8;
    Fgd fgd(model_.classifier(), cfg);
    const auto r = fgd.infer(eval_[0]);
    const auto ref = model_.classifier().logits(eval_[0]);
    std::unordered_set<uint32_t> cands(r.candidates.begin(),
                                       r.candidates.end());
    for (size_t i = 0; i < ref.size(); ++i) {
        if (cands.count(static_cast<uint32_t>(i)))
            EXPECT_FLOAT_EQ(r.logits[i], ref[i]);
        else
            EXPECT_FLOAT_EQ(r.logits[i], model_.classifier().bias()[i]);
    }
}

TEST_F(FgdTest, TopCandidateRecallReasonable)
{
    FgdConfig cfg;
    cfg.ef_search = 96;
    cfg.top_n = 16;
    Fgd fgd(model_.classifier(), cfg);
    double rec = 0.0;
    for (const auto &h : eval_) {
        const auto found = fgd.search(h, 16, nullptr);
        const auto truth =
            tensor::topkIndices(model_.classifier().logits(h), 4);
        rec += tensor::recall(found, truth);
    }
    EXPECT_GT(rec / eval_.size(), 0.6);
}

/** Property: larger search beam -> equal or better recall, more visits. */
class EfSweep : public FgdTest,
                public ::testing::WithParamInterface<size_t>
{
};

TEST_P(EfSweep, WiderBeamFindsMore)
{
    const size_t ef = GetParam();
    FgdConfig narrow;
    narrow.ef_search = ef;
    FgdConfig wide;
    wide.ef_search = ef * 4;
    Fgd a(model_.classifier(), narrow);
    Fgd b(model_.classifier(), wide);

    double rec_a = 0.0, rec_b = 0.0;
    uint64_t vis_a = 0, vis_b = 0;
    for (const auto &h : eval_) {
        uint64_t v = 0;
        const auto truth =
            tensor::topkIndices(model_.classifier().logits(h), 4);
        rec_a += tensor::recall(a.search(h, 16, &v), truth);
        vis_a += v;
        rec_b += tensor::recall(b.search(h, 16, &v), truth);
        vis_b += v;
    }
    EXPECT_GE(rec_b + 0.05 * eval_.size(), rec_a);
    EXPECT_GT(vis_b, vis_a);
}

INSTANTIATE_TEST_SUITE_P(Beams, EfSweep, ::testing::Values(16, 32, 64));

TEST_F(FgdTest, CostReflectsVisitedNodes)
{
    Fgd fgd(model_.classifier(), FgdConfig{});
    const auto r = fgd.infer(eval_[0]);
    // Visited-node traffic: weight rows + adjacency.
    EXPECT_GT(r.cost.bytes_read, 0u);
    EXPECT_LT(r.cost.bytes_read,
              model_.classifier().parameterBytes());
    EXPECT_GT(fgd.avgVisited(), 0.0);
}

TEST_F(FgdTest, ProbabilitiesNormalized)
{
    Fgd fgd(model_.classifier(), FgdConfig{});
    const auto r = fgd.infer(eval_[0]);
    float sum = 0.0f;
    for (float p : r.probabilities)
        sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(FgdDeathTest, TinyConfigsRejected)
{
    workloads::SyntheticConfig mc;
    mc.categories = 8;
    mc.hidden = 8;
    workloads::SyntheticModel model(mc);
    FgdConfig cfg;
    cfg.degree = 1;
    EXPECT_DEATH(Fgd(model.classifier(), cfg), "degree");
}

} // namespace
} // namespace enmc::baselines
