/**
 * @file
 * Round-trip tests for the JSON metrics exporter: schema fields, group
 * serialization, file output, and — on a real fault-injected functional
 * run — the ECC accounting invariant checked from the exported document
 * alone: faultInjectedWords == faultCorrected + faultDetected +
 * faultEscaped.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "runtime/system.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::obs {
namespace {

TEST(Metrics, DocumentCarriesSchemaAndTool)
{
    const Json doc = metricsDocument("unit_test");
    EXPECT_EQ(doc.at("schema").asString(), kMetricsSchemaName);
    EXPECT_EQ(doc.at("schema_version").asU64(),
              static_cast<uint64_t>(kMetricsSchemaVersion));
    EXPECT_EQ(doc.at("tool").asString(), "unit_test");
    EXPECT_TRUE(doc.has("groups"));
    EXPECT_TRUE(doc.has("traceEvents"));
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    // The trace array always carries the two timeline-name metadata
    // records, so the document loads directly in Perfetto.
    EXPECT_GE(doc.at("traceEvents").size(), 2u);
}

TEST(Metrics, GroupSerializationRoundTrip)
{
    StatGroup g("obstest.metrics");
    StatRegistration r(g);
    g.addCounter("events", "things that happened") += 11;
    ScalarStat &s = g.addScalar("depth", "queue depth");
    s.sample(2.0);
    s.sample(6.0);
    Histogram &h = g.addHistogram("lat", "latency", 0.0, 8.0, 4);
    h.sample(1.0);  // bin 0
    h.sample(7.0);  // bin 3
    h.sample(-1.0); // underflow
    h.sample(9.0);  // overflow

    // Dump -> parse: the consumer-side view must match what we recorded.
    const Json doc = Json::parseOrDie(metricsDocument("t").dump(2));
    const Json *grp = doc.at("groups").find("obstest.metrics");
    ASSERT_NE(grp, nullptr);

    const Json &c = grp->at("counters").at("events");
    EXPECT_EQ(c.at("value").asU64(), 11u);
    EXPECT_EQ(c.at("desc").asString(), "things that happened");

    const Json &sc = grp->at("scalars").at("depth");
    EXPECT_EQ(sc.at("count").asU64(), 2u);
    EXPECT_DOUBLE_EQ(sc.at("sum").asDouble(), 8.0);
    EXPECT_DOUBLE_EQ(sc.at("min").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(sc.at("max").asDouble(), 6.0);
    EXPECT_DOUBLE_EQ(sc.at("mean").asDouble(), 4.0);

    const Json &hist = grp->at("histograms").at("lat");
    EXPECT_DOUBLE_EQ(hist.at("lo").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(hist.at("hi").asDouble(), 8.0);
    ASSERT_EQ(hist.at("bins").size(), 4u);
    EXPECT_EQ(hist.at("bins").at(size_t{0}).asU64(), 1u);
    EXPECT_EQ(hist.at("bins").at(size_t{3}).asU64(), 1u);
    EXPECT_EQ(hist.at("underflow").asU64(), 1u);
    EXPECT_EQ(hist.at("overflow").asU64(), 1u);
    EXPECT_EQ(hist.at("total").asU64(), 4u);
}

TEST(Metrics, WriteMetricsProducesParseableFile)
{
    StatGroup g("obstest.file");
    StatRegistration r(g);
    ++g.addCounter("c", "");

    MetricsOptions opts;
    opts.tool = "unit_test";
    opts.metrics_path = ::testing::TempDir() + "/enmc_test_metrics.json";
    writeMetrics(opts);

    std::ifstream is(opts.metrics_path);
    ASSERT_TRUE(is.good());
    std::ostringstream buf;
    buf << is.rdbuf();
    const Json doc = Json::parseOrDie(buf.str());
    EXPECT_EQ(doc.at("schema").asString(), "enmc.metrics");
    EXPECT_EQ(doc.at("tool").asString(), "unit_test");
    EXPECT_NE(doc.at("groups").find("obstest.file"), nullptr);
}

TEST(Metrics, WriteMetricsNoOpWithoutPaths)
{
    // Must not crash or create files when nothing was requested.
    writeMetrics(MetricsOptions{});
}

/**
 * End-to-end invariant: run a functional job with fault injection on, and
 * check the ECC accounting of the exported document. Every injected word
 * must be accounted for as corrected, detected, or escaped — the JSON
 * consumer (tools/check_metrics.py in CI) relies on exactly this.
 */
TEST(Metrics, FaultCountersBalanceInExportedDocument)
{
    StatRegistry::instance().resetAll(); // isolate this run's counters

    workloads::SyntheticConfig mc;
    mc.categories = 2048;
    mc.hidden = 64;
    workloads::SyntheticModel model(mc);

    screening::ScreenerConfig scfg;
    scfg.categories = 2048;
    scfg.hidden = 64;
    scfg.selection = screening::SelectionMode::Threshold;
    Rng rng(3);
    screening::Screener screener(scfg, rng);
    Rng data = model.makeRng(1);
    auto train = model.sampleHiddenBatch(data, 96);
    screening::Trainer trainer(model.classifier(), screener,
                               screening::TrainerConfig{});
    trainer.train(train, {});
    screener.freezeQuantized();
    const float cut = screening::tuneThreshold(screener, train, 48);
    screener.setSelection(screening::SelectionMode::Threshold, 48, cut);
    const auto h_batch = model.sampleHiddenBatch(data, 2);

    runtime::SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 7;
    cfg.fault.data_ber = 1e-3;
    cfg.fault.ecc = true;
    runtime::EnmcSystem sys(cfg);
    const auto out =
        sys.runFunctional(model.classifier(), screener, h_batch, 4);
    EXPECT_GT(out.faults.injected_words, 0u) << "BER produced no faults";
    EXPECT_EQ(out.slice_cycles.size(), 4u);

    const Json doc = Json::parseOrDie(metricsDocument("t").dump());
    const Json *g = doc.at("groups").find("runtime.system");
    ASSERT_NE(g, nullptr);
    const Json &c = g->at("counters");
    const uint64_t injected = c.at("faultInjectedWords").at("value").asU64();
    const uint64_t corrected = c.at("faultCorrected").at("value").asU64();
    const uint64_t detected = c.at("faultDetected").at("value").asU64();
    const uint64_t escaped = c.at("faultEscaped").at("value").asU64();
    EXPECT_GT(injected, 0u);
    EXPECT_EQ(injected, corrected + detected + escaped)
        << "ECC accounting must balance in the exported JSON";
    EXPECT_EQ(injected, out.faults.injected_words);
    EXPECT_EQ(c.at("slices").at("value").asU64(), 4u);
    EXPECT_EQ(c.at("batchItems").at("value").asU64(), 2u);
    EXPECT_EQ(c.at("functionalRuns").at("value").asU64(), 1u);

    // The per-component rank/DRAM groups retire into the snapshot too —
    // the "four component groups" the acceptance bar asks for.
    EXPECT_NE(doc.at("groups").find("enmc.rank"), nullptr);
    EXPECT_NE(doc.at("groups").find("enmc.rank.dram"), nullptr);
}

} // namespace
} // namespace enmc::obs
