/**
 * @file
 * Tests for the process-wide StatRegistry: RAII enrollment, retire-merge
 * on unregistration, merged-by-name snapshots, and reset.
 *
 * The registry is a process-wide singleton shared with every other test
 * in this binary, so tests use unique group names and delta-based
 * assertions instead of assuming a pristine registry.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/registry.h"

namespace enmc::obs {
namespace {

bool
contains(const std::vector<std::string> &v, const std::string &s)
{
    for (const auto &x : v)
        if (x == s)
            return true;
    return false;
}

TEST(StatRegistry, RegistrationLifecycle)
{
    StatRegistry &reg = StatRegistry::instance();
    const size_t before = reg.liveCount();
    {
        StatGroup g("obstest.live");
        StatRegistration r(g);
        EXPECT_EQ(reg.liveCount(), before + 1);
        bool found = false;
        for (StatGroup *live : reg.live())
            if (live == &g)
                found = true;
        EXPECT_TRUE(found);
    }
    EXPECT_EQ(reg.liveCount(), before);
}

TEST(StatRegistry, RetireMergesFinalValuesAcrossLifetimes)
{
    // Two short-lived groups with the same name (the EnmcRank pattern):
    // the snapshot must aggregate both lifetimes.
    StatRegistry &reg = StatRegistry::instance();
    for (uint64_t add : {3u, 4u}) {
        StatGroup g("obstest.retire");
        StatRegistration r(g);
        g.addCounter("c", "events") += add;
        g.addScalar("s", "samples").sample(static_cast<double>(add));
        g.addHistogram("h", "dist", 0.0, 10.0, 5)
            .sample(static_cast<double>(add));
    }
    const auto snap = reg.snapshot();
    const auto it = snap.find("obstest.retire");
    ASSERT_NE(it, snap.end());
    EXPECT_EQ(it->second.counter("c").value(), 7u);
    EXPECT_EQ(it->second.scalar("s").count(), 2u);
    EXPECT_DOUBLE_EQ(it->second.scalar("s").sum(), 7.0);
    EXPECT_EQ(it->second.histogram("h").total(), 2u);
    EXPECT_EQ(it->second.histogram("h").bin(1), 1u); // 3 -> [2,4)
    EXPECT_EQ(it->second.histogram("h").bin(2), 1u); // 4 -> [4,6)
    EXPECT_TRUE(contains(reg.names(), "obstest.retire"));
}

TEST(StatRegistry, SnapshotMergesRetiredAndLive)
{
    StatRegistry &reg = StatRegistry::instance();
    {
        StatGroup dead("obstest.mixed");
        StatRegistration r(dead);
        dead.addCounter("c", "") += 5;
    }
    StatGroup live("obstest.mixed");
    StatRegistration r(live);
    live.addCounter("c", "") += 2;
    const auto snap = reg.snapshot();
    const auto it = snap.find("obstest.mixed");
    ASSERT_NE(it, snap.end());
    EXPECT_EQ(it->second.counter("c").value(), 7u);
    // The live group itself is untouched by taking a snapshot.
    EXPECT_EQ(live.counter("c").value(), 2u);
}

TEST(StatRegistry, SameNameLiveGroupsAggregate)
{
    // Eight per-channel controllers all named "dram.ctrl" export as one
    // entry; model that with two concurrent groups.
    StatGroup a("obstest.same");
    StatGroup b("obstest.same");
    StatRegistration ra(a);
    StatRegistration rb(b);
    ++a.addCounter("c", "");
    ++b.addCounter("c", "");
    const auto snap = StatRegistry::instance().snapshot();
    const auto it = snap.find("obstest.same");
    ASSERT_NE(it, snap.end());
    EXPECT_EQ(it->second.counter("c").value(), 2u);
}

TEST(StatRegistry, ResetAllDropsRetiredAndZeroesLive)
{
    StatRegistry &reg = StatRegistry::instance();
    {
        StatGroup dead("obstest.reset.retired");
        StatRegistration r(dead);
        ++dead.addCounter("c", "");
    }
    StatGroup live("obstest.reset.live");
    StatRegistration r(live);
    live.addCounter("c", "") += 9;

    reg.resetAll();

    const auto snap = reg.snapshot();
    // Fully retired history is gone...
    EXPECT_EQ(snap.find("obstest.reset.retired"), snap.end());
    // ...while live groups stay enrolled, zeroed.
    const auto it = snap.find("obstest.reset.live");
    ASSERT_NE(it, snap.end());
    EXPECT_EQ(it->second.counter("c").value(), 0u);
    EXPECT_EQ(live.counter("c").value(), 0u);
}

TEST(StatRegistry, DumpAllListsGroups)
{
    StatGroup g("obstest.dump");
    StatRegistration r(g);
    ++g.addCounter("visible", "a described counter");
    std::ostringstream oss;
    StatRegistry::instance().dumpAll(oss);
    EXPECT_NE(oss.str().find("obstest.dump.visible"), std::string::npos);
}

} // namespace
} // namespace enmc::obs
