/**
 * @file
 * Tests for the Chrome trace_event tracer: zero-cost-when-off guarantees,
 * span/instant recording, JSON structure, and trace file round trips.
 *
 * The tracer is a process-wide singleton, so every test starts and ends
 * disabled with an empty event buffer.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/trace.h"

namespace enmc::obs {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        Tracer::instance().setEnabled(false);
        Tracer::instance().clear();
    }
    void TearDown() override
    {
        Tracer::instance().setEnabled(false);
        Tracer::instance().clear();
    }
};

TEST_F(TraceTest, DisabledRecordsNothing)
{
    Tracer &t = Tracer::instance();
    EXPECT_FALSE(t.enabled());
    t.complete("a", "cat", kWallPid, 0, 1.0, 2.0);
    t.instant("b", "cat", kSimPid, 0, 3.0);
    {
        TraceSpan span("c", "cat");
        span.arg("x", 1.0);
    }
    EXPECT_EQ(t.eventCount(), 0u);
}

TEST_F(TraceTest, MetadataNamesAllTimelines)
{
    // Even an empty trace carries process_name metadata so viewers label
    // the wall-clock, DDR-clock, serving and cluster timelines.
    const Json events = Tracer::instance().eventsJson();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < 4; ++i) {
        const Json &m = events.at(i);
        EXPECT_EQ(m.at("ph").asString(), "M");
        EXPECT_EQ(m.at("name").asString(), "process_name");
        EXPECT_FALSE(m.at("args").at("name").asString().empty());
    }
    EXPECT_EQ(events.at(size_t{0}).at("pid").asU64(),
              static_cast<uint64_t>(kWallPid));
    EXPECT_EQ(events.at(size_t{1}).at("pid").asU64(),
              static_cast<uint64_t>(kSimPid));
    EXPECT_EQ(events.at(size_t{2}).at("pid").asU64(),
              static_cast<uint64_t>(kServePid));
    EXPECT_EQ(events.at(size_t{3}).at("pid").asU64(),
              static_cast<uint64_t>(kClusterPid));
}

TEST_F(TraceTest, CompleteAndInstantEvents)
{
    Tracer &t = Tracer::instance();
    t.setEnabled(true);
    t.complete("screen", "pipeline", kSimPid, 3, 10.0, 5.0,
               {{"rows", 64.0}});
    t.instant("filter", "pipeline", kSimPid, 3, 15.0,
              {{"candidates", 8.0}});
    EXPECT_EQ(t.eventCount(), 2u);

    const Json events = t.eventsJson();
    ASSERT_EQ(events.size(), 6u); // 4 metadata + 2 recorded

    const Json &x = events.at(size_t{4});
    EXPECT_EQ(x.at("name").asString(), "screen");
    EXPECT_EQ(x.at("cat").asString(), "pipeline");
    EXPECT_EQ(x.at("ph").asString(), "X");
    EXPECT_EQ(x.at("pid").asU64(), static_cast<uint64_t>(kSimPid));
    EXPECT_EQ(x.at("tid").asU64(), 3u);
    EXPECT_DOUBLE_EQ(x.at("ts").asDouble(), 10.0);
    EXPECT_DOUBLE_EQ(x.at("dur").asDouble(), 5.0);
    EXPECT_DOUBLE_EQ(x.at("args").at("rows").asDouble(), 64.0);

    const Json &i = events.at(size_t{5});
    EXPECT_EQ(i.at("ph").asString(), "i");
    EXPECT_FALSE(i.has("dur")); // instants carry no duration
    EXPECT_DOUBLE_EQ(i.at("args").at("candidates").asDouble(), 8.0);
}

TEST_F(TraceTest, SpanEmitsCompleteEventOnDestruction)
{
    Tracer &t = Tracer::instance();
    t.setEnabled(true);
    {
        TraceSpan span("slice.sim", "pipeline", 7);
        span.arg("slice", 2.0);
    }
    ASSERT_EQ(t.eventCount(), 1u);
    const Json events = t.eventsJson();
    const Json &e = events.at(size_t{4});
    EXPECT_EQ(e.at("name").asString(), "slice.sim");
    EXPECT_EQ(e.at("ph").asString(), "X");
    EXPECT_EQ(e.at("pid").asU64(), static_cast<uint64_t>(kWallPid));
    EXPECT_EQ(e.at("tid").asU64(), 7u);
    EXPECT_GE(e.at("dur").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(e.at("args").at("slice").asDouble(), 2.0);
}

TEST_F(TraceTest, SpanOpenedBeforeDisableDropsItsEvent)
{
    // A span that outlives a disable must not record half-baked data.
    Tracer &t = Tracer::instance();
    t.setEnabled(true);
    {
        TraceSpan span("late", "pipeline");
        t.setEnabled(false);
    }
    EXPECT_EQ(t.eventCount(), 0u);
}

TEST_F(TraceTest, ClearDropsRecordedEvents)
{
    Tracer &t = Tracer::instance();
    t.setEnabled(true);
    t.instant("x", "c", kWallPid, 0, 0.0);
    ASSERT_EQ(t.eventCount(), 1u);
    t.clear();
    EXPECT_EQ(t.eventCount(), 0u);
}

TEST_F(TraceTest, EnableRestartsTheClock)
{
    Tracer &t = Tracer::instance();
    t.setEnabled(true);
    // Freshly enabled: the epoch is "now", so nowUs() is tiny (well under
    // a second even on a loaded CI machine).
    EXPECT_LT(t.nowUs(), 1e6);
    EXPECT_GE(t.nowUs(), 0.0);
}

TEST_F(TraceTest, WriteTraceFileRoundTrip)
{
    Tracer &t = Tracer::instance();
    t.setEnabled(true);
    t.complete("exec", "pipeline", kSimPid, 1, 0.0, 42.0);
    const std::string path =
        ::testing::TempDir() + "/enmc_test_trace.json";
    t.writeTraceFile(path);

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::ostringstream buf;
    buf << is.rdbuf();
    const Json doc = Json::parseOrDie(buf.str());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events.at(size_t{4}).at("name").asString(), "exec");
    EXPECT_DOUBLE_EQ(events.at(size_t{4}).at("dur").asDouble(), 42.0);
}

} // namespace
} // namespace enmc::obs
