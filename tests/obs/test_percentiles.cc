/**
 * @file
 * Tests for the shared nearest-rank percentile helper, including a
 * brute-force check against the definition: the p-th percentile is the
 * smallest sample whose cumulative relative rank is >= p.
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/percentiles.h"

namespace enmc::obs {
namespace {

TEST(Percentiles, BasicMoments)
{
    const Percentiles p({3.0, 1.0, 2.0});
    EXPECT_EQ(p.count(), 3u);
    EXPECT_DOUBLE_EQ(p.min(), 1.0);
    EXPECT_DOUBLE_EQ(p.max(), 3.0);
    EXPECT_DOUBLE_EQ(p.sum(), 6.0);
    EXPECT_DOUBLE_EQ(p.mean(), 2.0);
    EXPECT_FALSE(p.empty());
}

TEST(Percentiles, NearestRankDefinition)
{
    // 100 samples 1..100: the p-th percentile is exactly p*100 (the
    // ceil(p*n)-th smallest). The old `sorted[p * (n-1)]` snippet
    // returned 99 for p99 of 1..100; nearest rank returns... 99 too,
    // but 50.0 -> 50 not 49.5-ish index truncation. Spot-check ranks.
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    const Percentiles p(v);
    EXPECT_DOUBLE_EQ(p.at(0.50), 50.0);
    EXPECT_DOUBLE_EQ(p.at(0.95), 95.0);
    EXPECT_DOUBLE_EQ(p.at(0.99), 99.0);
    EXPECT_DOUBLE_EQ(p.at(1.00), 100.0);
    EXPECT_DOUBLE_EQ(p.at(0.001), 1.0); // rank clamps up to 1
}

TEST(Percentiles, FloatingPointProductDoesNotSkipRank)
{
    // 0.99 * 100 computes as 99.00000000000001; a plain ceil would pick
    // rank 100 (the max) instead of 99.
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    EXPECT_DOUBLE_EQ(Percentiles(v).at(0.99), 99.0);
    // Same trap at 0.3 * 10 = 3.0000000000000004.
    std::vector<double> ten;
    for (int i = 1; i <= 10; ++i)
        ten.push_back(i);
    EXPECT_DOUBLE_EQ(Percentiles(ten).at(0.3), 3.0);
}

TEST(Percentiles, BruteForceAgainstDefinition)
{
    // For each (n, p), the nearest-rank percentile must be the smallest
    // sample x such that at least ceil(p*n) samples are <= x.
    for (size_t n : {1u, 2u, 3u, 7u, 48u, 100u}) {
        std::vector<double> v;
        for (size_t i = 0; i < n; ++i)
            v.push_back(static_cast<double>(i * 3 + 1)); // distinct, sorted
        const Percentiles ps(v);
        for (double p : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
            const double got = ps.at(p);
            size_t at_or_below = 0;
            for (double x : v)
                if (x <= got)
                    ++at_or_below;
            // Enough mass at or below the answer...
            EXPECT_GE(static_cast<double>(at_or_below) + 1e-9,
                      p * static_cast<double>(n))
                << "n=" << n << " p=" << p;
            // ...and the answer is the smallest such sample.
            for (double x : v) {
                if (x >= got)
                    continue;
                size_t below = 0;
                for (double y : v)
                    if (y <= x)
                        ++below;
                EXPECT_LT(static_cast<double>(below) + 1e-9,
                          p * static_cast<double>(n))
                    << "n=" << n << " p=" << p << ": " << x
                    << " already satisfies the rank";
            }
        }
    }
}

TEST(Percentiles, TheLmServerBugIsFixed)
{
    // 48 request latencies (the lm_inference_server case). The old
    // `static_cast<size_t>(p * (requests - 1))` picked index 46 for p99
    // (the 47th smallest); nearest rank requires ceil(0.99*48) = 48,
    // i.e. the maximum.
    std::vector<double> lat;
    for (int i = 1; i <= 48; ++i)
        lat.push_back(i * 10.0);
    const Percentiles p(lat);
    EXPECT_DOUBLE_EQ(p.at(0.99), 480.0);
    EXPECT_DOUBLE_EQ(p.at(0.95), 460.0); // ceil(45.6) = 46th
    EXPECT_DOUBLE_EQ(p.at(0.50), 240.0); // ceil(24) = 24th
}

TEST(Percentiles, SingleSample)
{
    const Percentiles p({7.0});
    EXPECT_DOUBLE_EQ(p.at(0.01), 7.0);
    EXPECT_DOUBLE_EQ(p.at(0.5), 7.0);
    EXPECT_DOUBLE_EQ(p.at(1.0), 7.0);
}

TEST(Percentiles, FreeFunctionMatchesClass)
{
    std::vector<double> v{5.0, 1.0, 9.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), Percentiles(v).at(0.5));
}

TEST(PercentilesDeathTest, EmptyAndOutOfRangePanic)
{
    const Percentiles empty((std::vector<double>()));
    EXPECT_TRUE(empty.empty());
    EXPECT_DEATH((void)empty.at(0.5), "empty");
    const Percentiles one({1.0});
    EXPECT_DEATH((void)one.at(0.0), "in \\(0, 1\\]");
    EXPECT_DEATH((void)one.at(1.5), "in \\(0, 1\\]");
}

} // namespace
} // namespace enmc::obs
