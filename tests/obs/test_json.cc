/**
 * @file
 * Tests for the minimal JSON value type: construction, serialization,
 * parsing, and write -> parse round trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/json.h"

namespace enmc::obs {
namespace {

TEST(Json, ScalarTypesAndAccessors)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).asBool());
    EXPECT_DOUBLE_EQ(Json(2.5).asDouble(), 2.5);
    EXPECT_EQ(Json(uint64_t{42}).asU64(), 42u);
    EXPECT_EQ(Json("hi").asString(), "hi");
}

TEST(Json, ObjectInsertionOrderAndReplace)
{
    Json o = Json::object();
    o.set("b", 1);
    o.set("a", 2);
    o.set("b", 3); // replace keeps position
    ASSERT_EQ(o.size(), 2u);
    EXPECT_EQ(o.members()[0].first, "b");
    EXPECT_EQ(o.members()[1].first, "a");
    EXPECT_EQ(o.at("b").asU64(), 3u);
    EXPECT_EQ(o.find("missing"), nullptr);
    EXPECT_TRUE(o.has("a"));
}

TEST(Json, ArrayPushAndIndex)
{
    Json a = Json::array();
    a.push(1);
    a.push("two");
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.at(size_t{0}).asU64(), 1u);
    EXPECT_EQ(a.at(size_t{1}).asString(), "two");
}

TEST(Json, DumpCompactAndPretty)
{
    Json o = Json::object();
    o.set("n", 1);
    Json arr = Json::array();
    arr.push(2);
    o.set("a", std::move(arr));
    EXPECT_EQ(o.dump(), "{\"n\":1,\"a\":[2]}");
    const std::string pretty = o.dump(2);
    EXPECT_NE(pretty.find("\n"), std::string::npos);
    EXPECT_NE(pretty.find("  \"n\": 1"), std::string::npos);
}

TEST(Json, IntegersPrintWithoutExponent)
{
    // Counters are uint64s; 1e6 must print as 1000000, not 1e+06.
    EXPECT_EQ(Json(uint64_t{1000000}).dump(), "1000000");
    EXPECT_EQ(Json(-3).dump(), "-3");
}

TEST(Json, NonFiniteNumbersSerializeAsNull)
{
    EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(),
              "null");
    EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(),
              "null");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, ParseBasicDocument)
{
    const Json j = Json::parseOrDie(
        R"({"s": "x", "n": -2.5, "b": true, "z": null, "a": [1, 2]})");
    EXPECT_EQ(j.at("s").asString(), "x");
    EXPECT_DOUBLE_EQ(j.at("n").asDouble(), -2.5);
    EXPECT_TRUE(j.at("b").asBool());
    EXPECT_TRUE(j.at("z").isNull());
    EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(Json, ParseStringEscapes)
{
    const Json j = Json::parseOrDie(R"("a\"b\\c\nd\u0041")");
    EXPECT_EQ(j.asString(), "a\"b\\c\ndA");
}

TEST(Json, ParseRejectsMalformedInput)
{
    Json out;
    std::string err;
    EXPECT_FALSE(Json::parse("{", out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(Json::parse("[1,]", out));
    EXPECT_FALSE(Json::parse("1 2", out)); // trailing characters
    EXPECT_FALSE(Json::parse("", out));
}

TEST(Json, RoundTripPreservesStructure)
{
    Json o = Json::object();
    o.set("name", "enmc");
    o.set("pi", 3.25);
    Json arr = Json::array();
    for (int i = 0; i < 4; ++i)
        arr.push(i);
    o.set("bins", std::move(arr));
    Json nested = Json::object();
    nested.set("deep", true);
    o.set("inner", std::move(nested));

    for (int indent : {0, 2}) {
        const Json back = Json::parseOrDie(o.dump(indent));
        EXPECT_EQ(back.at("name").asString(), "enmc");
        EXPECT_DOUBLE_EQ(back.at("pi").asDouble(), 3.25);
        EXPECT_EQ(back.at("bins").size(), 4u);
        EXPECT_EQ(back.at("bins").at(size_t{3}).asU64(), 3u);
        EXPECT_TRUE(back.at("inner").at("deep").asBool());
        EXPECT_EQ(back.dump(), o.dump());
    }
}

} // namespace
} // namespace enmc::obs
