/**
 * @file
 * Tests for system-level orchestration: slicing, timing, extrapolation,
 * and functional multi-rank execution.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/system.h"
#include "screening/pipeline.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::runtime {
namespace {

JobSpec
jobSpec(uint64_t l = 500000, uint64_t batch = 1)
{
    JobSpec spec;
    spec.categories = l;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.batch = batch;
    spec.candidates = l / 50;
    return spec;
}

TEST(System, RankTaskSlicesCategories)
{
    EnmcSystem sys{SystemConfig{}};
    const auto task = sys.makeRankTask(jobSpec(640000));
    EXPECT_EQ(task.categories, 10000u); // 640000 / 64 ranks
    EXPECT_EQ(task.expected_candidates, 200u);
}

TEST(System, LayoutRegionsDisjoint)
{
    EnmcSystem sys{SystemConfig{}};
    const auto t = sys.makeRankTask(jobSpec());
    const uint64_t screen_sz = t.categories * t.screenRowBytes();
    EXPECT_GE(t.class_weight_base, t.screen_weight_base + screen_sz);
    EXPECT_GT(t.feature_base, t.class_weight_base);
    EXPECT_GT(t.output_base, t.feature_base);
}

TEST(System, TimingRunsAndScalesWithCategories)
{
    EnmcSystem sys{SystemConfig{}};
    const auto small = sys.runTiming(jobSpec(250000));
    const auto large = sys.runTiming(jobSpec(1000000));
    EXPECT_GT(small.seconds, 0.0);
    const double ratio = large.seconds / small.seconds;
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

TEST(System, ExtrapolationMatchesFullSimulation)
{
    // Validation of the representative-tile method: force extrapolation on
    // a size that can also be fully simulated and compare.
    SystemConfig full_cfg;
    SystemConfig extrap_cfg;
    extrap_cfg.max_sim_tiles = 512; // tiny cap -> extrapolate
    EnmcSystem full(full_cfg);
    EnmcSystem extrap(extrap_cfg);
    const JobSpec spec = jobSpec(500000); // ~3907 tiles per rank
    const auto rf = full.runTiming(spec);
    const auto re = extrap.runTiming(spec);
    EXPECT_FALSE(rf.extrapolated);
    EXPECT_TRUE(re.extrapolated);
    const double err =
        std::abs(static_cast<double>(re.rank_cycles) - rf.rank_cycles) /
        rf.rank_cycles;
    EXPECT_LT(err, 0.08) << "extrapolated " << re.rank_cycles << " vs "
                         << rf.rank_cycles;
}

TEST(System, BatchIncreasesThroughput)
{
    EnmcSystem sys{SystemConfig{}};
    const auto b1 = sys.runTiming(jobSpec(500000, 1));
    const auto b4 = sys.runTiming(jobSpec(500000, 4));
    // 4x the inferences in < 4x the time (weight reuse).
    EXPECT_LT(b4.seconds, 4.0 * b1.seconds);
    const double thr1 = 1.0 / b1.seconds;
    const double thr4 = 4.0 / b4.seconds;
    EXPECT_GT(thr4, thr1);
}

class FunctionalSystem : public ::testing::Test
{
  protected:
    FunctionalSystem()
        : model_(makeConfig())
    {
        screening::ScreenerConfig cfg;
        cfg.categories = 2048;
        cfg.hidden = 64;
        cfg.selection = screening::SelectionMode::Threshold;
        Rng rng(3);
        screener_ = std::make_unique<screening::Screener>(cfg, rng);
        Rng data = model_.makeRng(1);
        auto train = model_.sampleHiddenBatch(data, 160);
        screening::Trainer trainer(model_.classifier(), *screener_,
                                   screening::TrainerConfig{});
        trainer.train(train, {});
        screener_->freezeQuantized();
        const float cut = screening::tuneThreshold(*screener_, train, 48);
        screener_->setSelection(screening::SelectionMode::Threshold, 48,
                                cut);
        h_batch_ = model_.sampleHiddenBatch(data, 3);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 2048;
        cfg.hidden = 64;
        return cfg;
    }

    workloads::SyntheticModel model_;
    std::unique_ptr<screening::Screener> screener_;
    std::vector<tensor::Vector> h_batch_;
};

/** Rank slicing must be transparent: 1, 2, 4, 8 ranks give one answer. */
class RankCount : public FunctionalSystem,
                  public ::testing::WithParamInterface<uint64_t>
{
};

TEST_P(RankCount, SlicingInvariant)
{
    EnmcSystem sys{SystemConfig{}};
    const auto ref = sys.runFunctional(model_.classifier(), *screener_,
                                       h_batch_, 1);
    const auto out = sys.runFunctional(model_.classifier(), *screener_,
                                       h_batch_, GetParam());
    for (size_t item = 0; item < h_batch_.size(); ++item) {
        for (size_t i = 0; i < 2048; ++i)
            EXPECT_FLOAT_EQ(out.logits[item][i], ref.logits[item][i]);
        EXPECT_EQ(out.candidates[item].size(),
                  ref.candidates[item].size());
    }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankCount, ::testing::Values(2, 4, 8));

TEST_F(FunctionalSystem, MatchesReferencePipeline)
{
    EnmcSystem sys{SystemConfig{}};
    const auto out = sys.runFunctional(model_.classifier(), *screener_,
                                       h_batch_, 4);
    screening::Pipeline pipe(model_.classifier(), *screener_);
    for (size_t item = 0; item < h_batch_.size(); ++item) {
        const auto ref = pipe.infer(h_batch_[item]);
        for (size_t i = 0; i < ref.logits.size(); ++i)
            EXPECT_FLOAT_EQ(out.logits[item][i], ref.logits[i]);
    }
}

TEST_F(FunctionalSystem, ProbabilitiesNormalized)
{
    EnmcSystem sys{SystemConfig{}};
    const auto out = sys.runFunctional(model_.classifier(), *screener_,
                                       h_batch_, 4);
    for (const auto &p : out.probabilities) {
        float sum = 0.0f;
        for (float v : p)
            sum += v;
        EXPECT_NEAR(sum, 1.0f, 1e-3f);
    }
}

TEST_F(FunctionalSystem, ReportsRankCycles)
{
    EnmcSystem sys{SystemConfig{}};
    const auto out = sys.runFunctional(model_.classifier(), *screener_,
                                       h_batch_, 4);
    EXPECT_GT(out.rank_cycles, 0u);
    EXPECT_GT(out.seconds, 0.0);
}

TEST_F(FunctionalSystem, RequiresFrozenThresholdScreener)
{
    EnmcSystem sys{SystemConfig{}};
    screening::ScreenerConfig cfg;
    cfg.categories = 2048;
    cfg.hidden = 64;
    Rng rng(7);
    screening::Screener raw(cfg, rng); // TopM mode, not frozen
    EXPECT_DEATH((void)sys.runFunctional(model_.classifier(), raw,
                                         h_batch_, 2),
                 "freezeQuantized");
}

} // namespace
} // namespace enmc::runtime

namespace enmc::runtime {
namespace {

/**
 * Functional-equivalence sweep: for every (quantization, candidate
 * budget, batch) point, the hardware model's mixed logits must equal the
 * reference pipeline bit for bit.
 */
struct EquivParam
{
    tensor::QuantBits quant;
    size_t target;
    size_t batch;
};

class FunctionalEquivalence
    : public ::testing::TestWithParam<EquivParam>
{
};

TEST_P(FunctionalEquivalence, HardwareMatchesPipeline)
{
    const EquivParam p = GetParam();
    workloads::SyntheticConfig mc;
    mc.categories = 1024;
    mc.hidden = 64;
    workloads::SyntheticModel model(mc);

    screening::ScreenerConfig cfg;
    cfg.categories = 1024;
    cfg.hidden = 64;
    cfg.quant = p.quant;
    cfg.selection = screening::SelectionMode::Threshold;
    Rng rng(17);
    screening::Screener scr(cfg, rng);
    Rng data = model.makeRng(1);
    auto train = model.sampleHiddenBatch(data, 96);
    screening::Trainer trainer(model.classifier(), scr,
                               screening::TrainerConfig{});
    trainer.train(train, {});
    scr.freezeQuantized();
    const float cut = screening::tuneThreshold(scr, train, p.target);
    scr.setSelection(screening::SelectionMode::Threshold, p.target, cut);

    const auto h = model.sampleHiddenBatch(data, p.batch);
    EnmcSystem sys{SystemConfig{}};
    const auto hw = sys.runFunctional(model.classifier(), scr, h, 3);
    screening::Pipeline pipe(model.classifier(), scr);
    for (size_t item = 0; item < p.batch; ++item) {
        const auto ref = pipe.infer(h[item]);
        for (size_t i = 0; i < ref.logits.size(); ++i)
            ASSERT_EQ(hw.logits[item][i], ref.logits[i])
                << "item " << item << " logit " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunctionalEquivalence,
    ::testing::Values(EquivParam{tensor::QuantBits::Int4, 16, 1},
                      EquivParam{tensor::QuantBits::Int4, 64, 2},
                      EquivParam{tensor::QuantBits::Int4, 4, 4},
                      EquivParam{tensor::QuantBits::Int8, 16, 1},
                      EquivParam{tensor::QuantBits::Int8, 48, 3},
                      EquivParam{tensor::QuantBits::Int2, 16, 2}),
    [](const ::testing::TestParamInfo<EquivParam> &info) {
        return "q" +
               std::to_string(static_cast<int>(info.param.quant)) + "m" +
               std::to_string(info.param.target) + "b" +
               std::to_string(info.param.batch);
    });

} // namespace
} // namespace enmc::runtime
