/**
 * @file
 * Tests for the execution-backend layer: registry lookup, capability
 * reporting, run-to-run determinism of every registered backend, the
 * single shared task layout, and bit-identical thread-pooled functional
 * execution.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/backend.h"
#include "runtime/partition.h"
#include "runtime/system.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::runtime {
namespace {

JobSpec
smallJob(uint64_t l = 65536, uint64_t batch = 2)
{
    JobSpec spec;
    spec.categories = l;
    spec.hidden = 256;
    spec.reduced = 64;
    spec.batch = batch;
    spec.candidates = l / 100;
    return spec;
}

// ------------------------------------------------------------- registry

TEST(BackendRegistry, ListsAllBuiltins)
{
    const auto names = backendNames();
    for (const char *expected :
         {"enmc", "nda", "chameleon", "tensordimm", "tensordimm-large",
          "cpu", "cpu-full", "auto"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing backend " << expected;
    }
}

TEST(BackendRegistry, CreatesEveryRegisteredBackend)
{
    for (const auto &name : backendNames()) {
        if (name.rfind("test-", 0) == 0)
            continue; // entries other tests registered
        const auto backend = createBackend(name);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->name(), name);
        EXPECT_TRUE(backend->capabilities().timing);
        EXPECT_FALSE(backend->capabilities().description.empty());
    }
}

TEST(BackendRegistry, UnknownNameDies)
{
    EXPECT_DEATH((void)createBackend("not-a-backend"), "unknown backend");
}

TEST(BackendRegistry, UnknownNameDeathListsTheRegistry)
{
    // The miss message must enumerate what *is* registered, so a typo'd
    // --backend flag is self-diagnosing.
    EXPECT_DEATH((void)createBackend("not-a-backend"),
                 "registered:.*enmc");
}

TEST(BackendRegistry, ContainsReflectsRegistration)
{
    auto &reg = BackendRegistry::instance();
    EXPECT_FALSE(reg.contains("test-contains"));
    reg.add("test-contains", [](const SystemConfig &cfg) {
        return std::make_unique<EnmcBackend>(cfg);
    });
    EXPECT_TRUE(reg.contains("test-contains"));
    const auto names = backendNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "test-contains"),
              names.end());
}

TEST(BackendRegistry, DuplicateRegistrationReplacesTheFactory)
{
    auto &reg = BackendRegistry::instance();
    int first_calls = 0, second_calls = 0;
    reg.add("test-dup", [&](const SystemConfig &cfg) {
        ++first_calls;
        return std::make_unique<EnmcBackend>(cfg);
    });
    reg.add("test-dup", [&](const SystemConfig &cfg) {
        ++second_calls;
        return std::make_unique<EnmcBackend>(cfg);
    });
    (void)createBackend("test-dup");
    EXPECT_EQ(first_calls, 0) << "replaced factory must never run";
    EXPECT_EQ(second_calls, 1);
}

TEST(BackendRegistry, FunctionalCapabilityIsTheEnmcFamilyOnly)
{
    for (const auto &name : backendNames()) {
        if (name.rfind("test-", 0) == 0)
            continue;
        const auto backend = createBackend(name);
        const bool expected =
            name == "enmc" || name == "enmc-resilient";
        EXPECT_EQ(backend->capabilities().functional, expected) << name;
    }
}

TEST(BackendRegistry, NonFunctionalBackendRefusesFunctionalSlices)
{
    const auto backend = createBackend("tensordimm");
    arch::RankTask task;
    task.categories = 16;
    task.hidden = 32;
    task.reduced = 8;
    EXPECT_DEATH((void)backend->runFunctionalSlice(task),
                 "does not support functional");
}

// ---------------------------------------------------------- determinism

TEST(BackendDeterminism, EveryBackendRepeatsTimingExactly)
{
    const JobSpec spec = smallJob();
    for (const auto &name : backendNames()) {
        if (name == "auto")
            continue; // adaptive by design: consecutive calls are warm-up
                      // probes of different candidates (decision-sequence
                      // determinism is covered in test_planner.cc)
        const auto backend = createBackend(name);
        const TimingResult a = backend->runJob(spec);
        const TimingResult b = backend->runJob(spec);
        EXPECT_EQ(a.rank_cycles, b.rank_cycles) << name;
        EXPECT_EQ(a.rank.screen_bytes, b.rank.screen_bytes) << name;
        EXPECT_EQ(a.rank.exec_bytes, b.rank.exec_bytes) << name;
        EXPECT_EQ(a.rank.dram_reads, b.rank.dram_reads) << name;
        EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << name;
        if (name != "cluster") {
            // The cluster aggregate times whole nodes; it has no
            // single-rank cycle count by design.
            EXPECT_GT(a.rank_cycles, 0u) << name;
        }
    }
}

TEST(BackendDeterminism, FreshInstanceMatchesReusedInstance)
{
    const JobSpec spec = smallJob();
    for (const auto &name : backendNames()) {
        const Cycles first = createBackend(name)->runJob(spec).rank_cycles;
        const Cycles second = createBackend(name)->runJob(spec).rank_cycles;
        EXPECT_EQ(first, second) << name;
    }
}

TEST(BackendDeterminism, BackendsRankRelativeToEachOther)
{
    // The whole point of the uniform interface: timings compare directly.
    const JobSpec spec = smallJob();
    const double enmc = createBackend("enmc")->runJob(spec).seconds;
    const double td = createBackend("tensordimm")->runJob(spec).seconds;
    const double cpu_full = createBackend("cpu-full")->runJob(spec).seconds;
    EXPECT_LT(enmc, td);       // dual-module INT4 screening wins
    EXPECT_LT(td, cpu_full);   // any NMP scheme beats the CPU baseline
}

// --------------------------------------------------------------- layout

TEST(TaskLayoutPolicy, TimingAndFunctionalPathsShareOneLayout)
{
    // The timing path builds tasks through makeSliceTask; the functional
    // path assigns the layout on its hand-built slice task. For the same
    // task shape the five base addresses must be byte-identical.
    const JobSpec spec = smallJob();
    const uint64_t rows = 1024, cands = 32;
    const arch::RankTask timing =
        EnmcSystem::makeSliceTask(spec, rows, cands);

    arch::RankTask functional;
    functional.categories = rows;
    functional.hidden = spec.hidden;
    functional.reduced = spec.reduced;
    functional.quant = spec.quant;
    functional.batch = spec.batch;
    TaskLayout::assign(functional);

    EXPECT_EQ(functional.screen_weight_base, timing.screen_weight_base);
    EXPECT_EQ(functional.class_weight_base, timing.class_weight_base);
    EXPECT_EQ(functional.bias_base, timing.bias_base);
    EXPECT_EQ(functional.feature_base, timing.feature_base);
    EXPECT_EQ(functional.output_base, timing.output_base);
}

TEST(TaskLayoutPolicy, RegionsAreDisjointAndAligned)
{
    arch::RankTask task;
    task.categories = 777;
    task.hidden = 300;
    task.reduced = 75;
    task.batch = 3;
    const uint64_t footprint = TaskLayout::assign(task);

    const Addr bases[] = {task.screen_weight_base, task.class_weight_base,
                          task.bias_base, task.feature_base,
                          task.output_base};
    for (size_t i = 0; i + 1 < 5; ++i)
        EXPECT_LT(bases[i], bases[i + 1]);
    for (Addr base : bases)
        EXPECT_EQ(base % TaskLayout::kAlign, 0u);
    EXPECT_GE(footprint,
              task.output_base + task.categories * sizeof(float));
}

TEST(RankPartitionerPolicy, CoversRangeWithContiguousDisjointSlices)
{
    const auto slices = RankPartitioner::partition(100, 1000, 7);
    ASSERT_FALSE(slices.empty());
    EXPECT_EQ(slices.front().begin, 100u);
    uint64_t covered = 0;
    for (size_t i = 0; i < slices.size(); ++i) {
        EXPECT_GT(slices[i].rows, 0u);
        if (i > 0)
            EXPECT_EQ(slices[i].begin,
                      slices[i - 1].begin + slices[i - 1].rows);
        covered += slices[i].rows;
    }
    EXPECT_EQ(covered, 1000u);
    EXPECT_LE(slices.size(), 7u);
}

TEST(RankPartitionerPolicy, DropsTrailingEmptySlices)
{
    // 10 rows over 8 parts: ceil slicing gives 2-row slices, so only 5
    // slices carry work.
    const auto slices = RankPartitioner::partition(0, 10, 8);
    EXPECT_EQ(slices.size(), 5u);
    EXPECT_EQ(slices.back().begin + slices.back().rows, 10u);
}

// ------------------------------------------------- threaded functional

class ThreadedFunctional : public ::testing::Test
{
  protected:
    ThreadedFunctional()
        : model_(makeConfig())
    {
        screening::ScreenerConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        cfg.selection = screening::SelectionMode::Threshold;
        Rng rng(11);
        screener_ = std::make_unique<screening::Screener>(cfg, rng);
        Rng data = model_.makeRng(2);
        auto train = model_.sampleHiddenBatch(data, 128);
        screening::Trainer trainer(model_.classifier(), *screener_,
                                   screening::TrainerConfig{});
        trainer.train(train, {});
        screener_->freezeQuantized();
        const float cut = screening::tuneThreshold(*screener_, train, 32);
        screener_->setSelection(screening::SelectionMode::Threshold, 32,
                                cut);
        h_batch_ = model_.sampleHiddenBatch(data, 3);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    EnmcSystem::FunctionalResult
    runWithThreads(uint64_t threads) const
    {
        SystemConfig cfg;
        cfg.sim_threads = threads;
        EnmcSystem sys(cfg);
        return sys.runFunctional(model_.classifier(), *screener_, h_batch_,
                                 8);
    }

    workloads::SyntheticModel model_;
    std::unique_ptr<screening::Screener> screener_;
    std::vector<tensor::Vector> h_batch_;
};

TEST_F(ThreadedFunctional, PooledRunsBitMatchSerial)
{
    const auto serial = runWithThreads(1);
    for (uint64_t threads : {2ull, 8ull}) {
        const auto pooled = runWithThreads(threads);
        EXPECT_EQ(pooled.rank_cycles, serial.rank_cycles)
            << threads << " threads";
        ASSERT_EQ(pooled.logits.size(), serial.logits.size());
        for (size_t item = 0; item < serial.logits.size(); ++item) {
            for (size_t i = 0; i < serial.logits[item].size(); ++i)
                ASSERT_EQ(pooled.logits[item][i], serial.logits[item][i])
                    << threads << " threads, item " << item << " logit "
                    << i;
            ASSERT_EQ(pooled.candidates[item], serial.candidates[item])
                << threads << " threads, item " << item;
            for (size_t i = 0; i < serial.probabilities[item].size(); ++i)
                ASSERT_EQ(pooled.probabilities[item][i],
                          serial.probabilities[item][i]);
        }
    }
}

TEST_F(ThreadedFunctional, GlobalPoolBitMatchesSerial)
{
    const auto serial = runWithThreads(1);
    const auto pooled = runWithThreads(0); // process-wide pool
    EXPECT_EQ(pooled.rank_cycles, serial.rank_cycles);
    for (size_t item = 0; item < serial.logits.size(); ++item) {
        for (size_t i = 0; i < serial.logits[item].size(); ++i)
            ASSERT_EQ(pooled.logits[item][i], serial.logits[item][i]);
        ASSERT_EQ(pooled.candidates[item], serial.candidates[item]);
    }
}

} // namespace
} // namespace enmc::runtime
