/**
 * @file
 * Property tests for the adaptive offload planner and the `"auto"`
 * backend.
 *
 * The contract under test, in order of appearance:
 *  - configuration errors (too few candidates, duplicates, nested
 *    meta-backends, bad knobs, unknown kill target) fail loudly;
 *  - planner decisions are a pure function of (trace, config, seed);
 *  - stationary traffic converges to the offline argmin backend;
 *  - a mid-trace latency shift triggers a re-plan within the
 *    exploration window;
 *  - the scripted fault burst never routes to the dead backend;
 *  - under `--backend=auto`, serve replay is bit-identical across
 *    ENMC_THREADS and logits are memcmp-equal to a fixed-backend
 *    reference for every decision sequence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "runtime/api.h"
#include "runtime/planner.h"
#include "serve/loop.h"
#include "workloads/synthetic.h"

namespace enmc::runtime {
namespace {

// ------------------------------------------------------ config fail-loud

TEST(PlannerConfig, FewerThanTwoCandidatesDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    PlannerConfig cfg;
    cfg.candidates = {"cpu"};
    EXPECT_DEATH(validate(cfg), "at least two candidate");
}

TEST(PlannerConfig, DuplicateCandidateDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    PlannerConfig cfg;
    cfg.candidates = {"cpu", "enmc", "cpu"};
    EXPECT_DEATH(validate(cfg), "listed twice");
}

TEST(PlannerConfig, NestedMetaBackendDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    PlannerConfig cfg;
    cfg.candidates = {"cpu", "auto"};
    EXPECT_DEATH(validate(cfg), "meta-backend");
    cfg.candidates = {"cpu", "cluster"};
    EXPECT_DEATH(validate(cfg), "meta-backend");
}

TEST(PlannerConfig, BadDecayDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    PlannerConfig cfg;
    cfg.decay = 1.0;
    EXPECT_DEATH(validate(cfg), "ENMC_PLAN_DECAY");
    cfg.decay = -0.1;
    EXPECT_DEATH(validate(cfg), "ENMC_PLAN_DECAY");
}

TEST(PlannerConfig, ZeroWarmupRoundsDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    PlannerConfig cfg;
    cfg.warmup_rounds = 0;
    EXPECT_DEATH(validate(cfg), "WARMUP_ROUNDS");
}

TEST(PlannerConfig, UnknownKillTargetDies)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    PlannerConfig cfg;
    cfg.kill_backend = "not-a-candidate";
    EXPECT_DEATH(validate(cfg), "not a planner candidate");
}

TEST(AutoBackendRegistry, FewerThanTwoRegisteredCandidatesDiesLoudly)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // The registry error path: candidates that validate but do not
    // resolve must not silently degrade into a single-backend planner.
    // The death message must list the candidate set (self-diagnosing,
    // like createBackend's unknown-name path).
    PlannerConfig cfg;
    cfg.candidates = {"cpu", "definitely-not-registered"};
    EXPECT_DEATH((void)AutoBackend(SystemConfig{}, cfg),
                 "at least two registered candidate");
    EXPECT_DEATH((void)AutoBackend(SystemConfig{}, cfg),
                 "definitely-not-registered");
}

TEST(AutoBackendRegistry, AutoResolvesFromTheRegistryByName)
{
    const auto backend = createBackend("auto");
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->name(), "auto");
    EXPECT_TRUE(backend->capabilities().timing);
    EXPECT_FALSE(backend->capabilities().functional);
}

// ---------------------------------------------------------------- purity

PlannerConfig
unitConfig()
{
    PlannerConfig cfg;
    cfg.candidates = {"slow", "fast", "mid"};
    cfg.explore_every = 8;
    cfg.seed = 7;
    return cfg;
}

/** Drive `planner` with a synthetic latency table; returns the decision
 *  sequence. Latencies are a pure function of the chosen backend, so the
 *  whole run is a pure function of (planner config, seed). */
std::vector<size_t>
drive(OffloadPlanner &planner, const PlanBin &bin,
      const std::vector<double> &latency_us, size_t steps)
{
    std::vector<size_t> picks;
    for (size_t i = 0; i < steps; ++i) {
        const auto d = planner.plan(bin);
        planner.observe(bin, d.backend, latency_us[d.backend]);
        picks.push_back(d.backend);
    }
    return picks;
}

TEST(OffloadPlanner, DecisionsArePureInConfigAndSeed)
{
    const PlannerConfig cfg = unitConfig();
    PlanBin bin;
    bin.batch_bucket = 3;
    bin.categories = 1 << 20;
    bin.hidden = 512;
    const std::vector<double> lat = {100.0, 40.0, 70.0};

    OffloadPlanner a(cfg, cfg.candidates);
    OffloadPlanner b(cfg, cfg.candidates);
    EXPECT_EQ(drive(a, bin, lat, 200), drive(b, bin, lat, 200));
}

TEST(OffloadPlanner, WarmupProbesEveryCandidateOnce)
{
    const PlannerConfig cfg = unitConfig();
    OffloadPlanner planner(cfg, cfg.candidates);
    PlanBin bin;
    const std::vector<double> lat = {100.0, 40.0, 70.0};
    const auto picks = drive(planner, bin, lat, 3);
    EXPECT_EQ(picks, (std::vector<size_t>{0, 1, 2}));
    EXPECT_EQ(planner.stats().counter("warmupPlans").value(), 3u);
}

// ----------------------------------------------------------- convergence

TEST(OffloadPlanner, StationaryTrafficConvergesToArgmin)
{
    PlannerConfig cfg = unitConfig();
    cfg.explore_every = 0; // pure exploitation after warm-up
    OffloadPlanner planner(cfg, cfg.candidates);
    PlanBin bin;
    const std::vector<double> lat = {100.0, 40.0, 70.0};
    const auto picks = drive(planner, bin, lat, 50);
    // After the 3 warm-up probes every decision is the argmin (index 1).
    for (size_t i = 3; i < picks.size(); ++i)
        EXPECT_EQ(picks[i], 1u) << "plan " << i;
    EXPECT_EQ(planner.argminEstimate(bin), 1);
    EXPECT_EQ(planner.stats().counter("switchEvents").value(), 0u);
    EXPECT_EQ(planner.stats().counter("dispatch.fast").value(), 48u);
}

TEST(OffloadPlanner, ExplorationProbesNonBestCandidatesOnSchedule)
{
    PlannerConfig cfg = unitConfig();
    cfg.explore_every = 4;
    OffloadPlanner planner(cfg, cfg.candidates);
    PlanBin bin;
    const std::vector<double> lat = {100.0, 40.0, 70.0};
    drive(planner, bin, lat, 100);
    const uint64_t explores =
        planner.stats().counter("explorePlans").value();
    EXPECT_GT(explores, 10u);
    // Exploration never probes the current argmin, so with stationary
    // latencies every explore hit a non-best candidate.
    EXPECT_EQ(planner.stats().counter("dispatch.slow").value() +
                  planner.stats().counter("dispatch.mid").value(),
              explores + 2 /* their warm-up probes */);
}

TEST(OffloadPlanner, AutoBackendConvergesToOfflineArgmin)
{
    // Real backends this time: the steady-state pick must match what an
    // offline profile of every candidate would choose for this job.
    PlannerConfig cfg;
    cfg.candidates = {"cpu", "enmc", "tensordimm"};
    cfg.explore_every = 0;
    const SystemConfig sys;

    JobSpec spec;
    spec.categories = 65536;
    spec.hidden = 256;
    spec.reduced = 64;
    spec.batch = 4;
    spec.candidates = 655;

    double best_seconds = -1.0;
    std::string best_name;
    for (const auto &name : cfg.candidates) {
        const double s = createBackend(name, sys)->runJob(spec).seconds;
        if (best_seconds < 0.0 || s < best_seconds) {
            best_seconds = s;
            best_name = name;
        }
    }

    AutoBackend backend(sys, cfg);
    AutoBackend::PlannedRun last;
    for (int i = 0; i < 8; ++i)
        last = backend.runPlanned(spec);
    EXPECT_EQ(last.kind, OffloadPlanner::Kind::Steady);
    EXPECT_EQ(last.backend, best_name);
    const PlanBin bin = OffloadPlanner::binFor(spec);
    const int argmin = backend.planner().argminEstimate(bin);
    ASSERT_GE(argmin, 0);
    EXPECT_EQ(backend.planner().names()[static_cast<size_t>(argmin)],
              best_name);
}

// ----------------------------------------------------------------- replan

TEST(OffloadPlanner, LatencyShiftTriggersReplanWithinExplorationWindow)
{
    PlannerConfig cfg = unitConfig();
    cfg.explore_every = 8;
    cfg.decay = 0.3;
    OffloadPlanner planner(cfg, cfg.candidates);
    PlanBin bin;

    // Phase 1: "fast" wins.
    std::vector<double> lat = {100.0, 40.0, 70.0};
    drive(planner, bin, lat, 40);
    EXPECT_EQ(planner.argminEstimate(bin), 1);
    const uint64_t switches_before =
        planner.stats().counter("switchEvents").value();

    // Phase 2: "fast" degrades 5x (e.g. a fault-injected rank). The
    // steady path keeps observing it, so its EWMA rises past "mid"
    // within a couple of observations — well inside one exploration
    // window of 8 plans.
    lat[1] = 200.0;
    const auto picks = drive(planner, bin, lat, cfg.explore_every);
    EXPECT_EQ(planner.argminEstimate(bin), 2);
    EXPECT_GT(planner.stats().counter("switchEvents").value(),
              switches_before);
    // And the tail of the window is already routed to the new winner.
    EXPECT_EQ(picks.back(), 2u);
}

// ------------------------------------------------------------ fault burst

TEST(OffloadPlanner, ScriptedKillNeverRoutesToTheDeadBackend)
{
    PlannerConfig cfg = unitConfig();
    cfg.explore_every = 4;
    cfg.kill_backend = "fast";
    cfg.kill_after = 20;
    cfg.revive_after = 40;
    OffloadPlanner planner(cfg, cfg.candidates);
    PlanBin bin;
    const std::vector<double> lat = {100.0, 40.0, 70.0};

    std::vector<size_t> picks;
    for (size_t i = 0; i < 100; ++i) {
        const auto d = planner.plan(bin);
        planner.observe(bin, d.backend, lat[d.backend]);
        picks.push_back(d.backend);
        // During the burst window [kill_after, kill_after+revive_after)
        // the victim must never be routed to.
        if (i >= cfg.kill_after && i < cfg.kill_after + cfg.revive_after) {
            EXPECT_NE(picks.back(), 1u) << "plan " << i;
        }
    }
    EXPECT_EQ(planner.stats().counter("deadDispatches").value(), 0u);
    EXPECT_EQ(planner.stats().counter("killEvents").value(), 1u);
    EXPECT_EQ(planner.stats().counter("reviveEvents").value(), 1u);
    // The kill forces a steady-state switch away from the argmin...
    EXPECT_GE(planner.stats().counter("switchEvents").value(), 1u);
    // ...and after revival, exploration re-probes the victim and steady
    // routing returns to it (its estimate was never poisoned).
    EXPECT_EQ(picks.back(), 1u);
}

TEST(OffloadPlanner, KillingTheLastAvailableBackendPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    const PlannerConfig cfg = unitConfig();
    OffloadPlanner planner(cfg, cfg.candidates);
    planner.setAvailable("slow", false);
    planner.setAvailable("fast", false);
    EXPECT_DEATH(planner.setAvailable("mid", false),
                 "no candidate would remain");
}

// ------------------------------------------- serve-level bit-determinism

class PlannerServeTest : public ::testing::Test
{
  protected:
    PlannerServeTest()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 160)),
          val_(model_.sampleHiddenBatch(rng_, 48)),
          queries_(model_.sampleHiddenBatch(rng_, 24))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    std::unique_ptr<EnmcClassifier>
    makeClassifier(uint64_t threads)
    {
        ClassifierOptions opt;
        opt.candidates = 48;
        SystemConfig sys;
        sys.sim_threads = threads;
        auto clf = std::make_unique<EnmcClassifier>(model_.classifier(),
                                                    opt, sys);
        clf->calibrate(train_, val_);
        return clf;
    }

    static JobSpec
    job()
    {
        JobSpec spec;
        spec.categories = 32768;
        spec.hidden = 128;
        spec.reduced = 32;
        spec.candidates = 512;
        return spec;
    }

    serve::ServeConfig
    config(const std::string &backend) const
    {
        serve::ServeConfig cfg;
        cfg.backend = backend;
        cfg.queue_capacity = 64;
        cfg.max_batch = 8;
        cfg.max_delay_us = 50.0;
        cfg.warmup_requests = 0;
        cfg.topk = 5;
        cfg.planner.candidates = {"cpu", "enmc", "tensordimm"};
        cfg.planner.explore_every = 4;
        return cfg;
    }

    serve::ArrivalTrace
    trace() const
    {
        serve::ArrivalTrace t;
        for (size_t i = 0; i < queries_.size(); ++i) {
            serve::Request r;
            r.id = i;
            r.hidden = queries_[i];
            r.candidates = 32 + 8 * (i % 3);
            r.arrival_us = static_cast<double>(i / 8) * 120.0 +
                           static_cast<double>(i % 2) * 10.0;
            t.requests.push_back(r);
        }
        t.normalize();
        return t;
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
    std::vector<tensor::Vector> queries_;
};

TEST_F(PlannerServeTest, AutoReplayBitIdenticalAcrossSimThreads)
{
    const serve::ArrivalTrace arrivals = trace();

    std::vector<serve::ServeReport> reports;
    for (uint64_t threads : {1, 4, 8}) {
        auto clf = makeClassifier(threads);
        serve::ServeLoop loop(config("auto"), job());
        loop.attachClassifier(*clf);
        reports.push_back(loop.replay(arrivals));
    }

    ASSERT_EQ(reports[0].responses.size(), arrivals.requests.size());
    for (size_t v = 1; v < reports.size(); ++v) {
        ASSERT_EQ(reports[v].responses.size(),
                  reports[0].responses.size());
        for (size_t i = 0; i < reports[0].responses.size(); ++i) {
            const serve::Response &a = reports[0].responses[i];
            const serve::Response &b = reports[v].responses[i];
            ASSERT_EQ(a.id, b.id);
            ASSERT_EQ(a.admission, b.admission);
            // The planner's decision sequence itself must replay.
            ASSERT_EQ(a.backend, b.backend) << "request " << a.id;
            ASSERT_DOUBLE_EQ(a.dispatch_us, b.dispatch_us);
            ASSERT_DOUBLE_EQ(a.complete_us, b.complete_us);
            ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
            if (!a.probabilities.empty()) {
                ASSERT_EQ(std::memcmp(a.probabilities.data(),
                                      b.probabilities.data(),
                                      a.probabilities.size() *
                                          sizeof(float)),
                          0);
            }
        }
    }
}

TEST_F(PlannerServeTest, AutoLogitsMemcmpEqualFixedBackendReference)
{
    // Whatever the planner decides, the functional outputs must be the
    // fixed-backend outputs, bit for bit, for every request.
    const serve::ArrivalTrace arrivals = trace();
    auto clf_auto = makeClassifier(4);
    auto clf_ref = makeClassifier(4);

    serve::ServeLoop loop_auto(config("auto"), job());
    loop_auto.attachClassifier(*clf_auto);
    const serve::ServeReport auto_report = loop_auto.replay(arrivals);

    serve::ServeLoop loop_ref(config("enmc"), job());
    loop_ref.attachClassifier(*clf_ref);
    const serve::ServeReport ref_report = loop_ref.replay(arrivals);

    ASSERT_EQ(auto_report.responses.size(), ref_report.responses.size());
    bool saw_decisions = false;
    for (size_t i = 0; i < auto_report.responses.size(); ++i) {
        const serve::Response &a = auto_report.responses[i];
        const serve::Response &r = ref_report.responses[i];
        ASSERT_EQ(a.id, r.id);
        ASSERT_EQ(a.admission, r.admission);
        if (!a.backend.empty() && a.backend != "enmc")
            saw_decisions = true;
        ASSERT_EQ(a.probabilities.size(), r.probabilities.size());
        if (!a.probabilities.empty()) {
            ASSERT_EQ(std::memcmp(a.probabilities.data(),
                                  r.probabilities.data(),
                                  a.probabilities.size() * sizeof(float)),
                      0)
                << "auto logits differ from fixed-backend reference, "
                   "request "
                << a.id;
        }
        ASSERT_EQ(a.topk, r.topk);
        ASSERT_EQ(a.candidates, r.candidates);
    }
    // The planner actually exercised non-reference backends (warm-up
    // probes at minimum), so the equality above is a real property.
    EXPECT_TRUE(saw_decisions);
}

} // namespace
} // namespace enmc::runtime
