/**
 * @file
 * Tests for the multi-rank channel simulation and the hardware tile
 * sequencer.
 */

#include <gtest/gtest.h>

#include "runtime/channel_sim.h"
#include "runtime/compiler.h"

namespace enmc::runtime {
namespace {

/** Per-channel job: ChannelSim slices `categories` over its ranks. */
JobSpec
channelJob(uint64_t l_per_rank, uint32_t ranks)
{
    JobSpec spec;
    spec.categories = l_per_rank * ranks;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.batch = 1;
    spec.candidates = 16 * ranks;
    return spec;
}

TEST(Sequencer, ProgramIsConstantSize)
{
    arch::RankTask task;
    task.categories = 4096;
    task.hidden = 512;
    task.reduced = 128;
    task.batch = 1;
    arch::EnmcConfig seq_cfg;
    seq_cfg.hw_tile_sequencer = true;
    arch::EnmcConfig base_cfg;
    const CompiledJob with = compileClassification(task, seq_cfg);
    const CompiledJob without = compileClassification(task, base_cfg);
    EXPECT_LT(with.program.size(), 20u);
    EXPECT_GT(without.program.size(), 3 * 2000u);
}

TEST(Sequencer, SameWorkSameTraffic)
{
    arch::RankTask task;
    task.categories = 4096;
    task.hidden = 512;
    task.reduced = 128;
    task.batch = 1;
    task.expected_candidates = 32;
    task.class_weight_base = 1ull << 24;
    task.feature_base = 1ull << 26;
    const dram::Organization org =
        dram::Organization::paperTable3().singleRankView();

    auto run = [&](bool sequencer) {
        arch::EnmcConfig cfg;
        cfg.hw_tile_sequencer = sequencer;
        arch::EnmcRank rank(cfg, org, dram::Timing::ddr4_2400());
        const CompiledJob job = compileClassification(task, cfg);
        return rank.run(job.program, task);
    };
    const arch::RankResult with = run(true);
    const arch::RankResult without = run(false);
    EXPECT_EQ(with.screen_bytes, without.screen_bytes);
    EXPECT_EQ(with.exec_bytes, without.exec_bytes);
    EXPECT_EQ(with.candidates, without.candidates);
    // The sequencer generates the loop on-DIMM.
    EXPECT_GT(with.generated_instructions, without.generated_instructions);
    EXPECT_LT(with.instructions, without.instructions);
    // Single-rank timing is similar (the C/A bus was never the problem
    // with one rank).
    const double ratio =
        static_cast<double>(with.cycles) / without.cycles;
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.2);
}

TEST(Sequencer, FunctionalResultsUnchanged)
{
    // The sequencer must not change numerics: reuse the functional path
    // through EnmcSystem with sequencer enabled.
    // (Covered indirectly: runFunctional with a sequencer config.)
    SystemConfig cfg;
    cfg.enmc.hw_tile_sequencer = true;
    EnmcSystem sys(cfg);
    SUCCEED(); // construction sanity; numerics covered in test_system
}

TEST(ChannelSim, SingleRankMatchesStandaloneRank)
{
    SystemConfig cfg;
    ChannelSim sim(cfg, 1);
    const JobSpec spec = channelJob(8192, 1);
    const ChannelSimResult r = sim.run(spec);
    ASSERT_EQ(r.ranks.size(), 1u);

    // The same slice executed standalone.
    const arch::RankTask task =
        EnmcSystem::makeSliceTask(spec, 8192, spec.candidates);
    arch::EnmcRank rank(cfg.enmc, cfg.org.singleRankView(), cfg.timing);
    const CompiledJob job = compileClassification(task, cfg.enmc);
    const arch::RankResult solo = rank.run(job.program, task);

    const double ratio = static_cast<double>(r.cycles) / solo.cycles;
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.05);
    EXPECT_EQ(r.ranks[0].screen_bytes, solo.screen_bytes);
}

TEST(ChannelSim, SharedCaBusThrottlesManyRanks)
{
    // Without the sequencer, 8 ranks' per-tile instruction streams share
    // one C/A slot per cycle: ~7 issue cycles per tile x 8 ranks greatly
    // exceeds a tile's ~8-cycle data time, so ranks starve.
    SystemConfig cfg;
    ChannelSim one(cfg, 1);
    ChannelSim eight(cfg, 8);
    const ChannelSimResult r1 = one.run(channelJob(32 * 1024, 1));
    const ChannelSimResult r8 = eight.run(channelJob(32 * 1024, 8));
    // Each rank processes the same slice size; with a private C/A a rank
    // would finish in ~r1.cycles. The shared bus stretches it.
    EXPECT_GT(r8.cycles, r1.cycles * 3);
    EXPECT_GT(r8.caUtilization(), 0.9);
}

TEST(ChannelSim, SequencerRemovesCaBottleneck)
{
    SystemConfig base;
    SystemConfig seq = base;
    seq.enmc.hw_tile_sequencer = true;
    const JobSpec spec = channelJob(32 * 1024, 8);
    const ChannelSimResult naive = ChannelSim(base, 8).run(spec);
    const ChannelSimResult hw = ChannelSim(seq, 8).run(spec);
    EXPECT_LT(hw.cycles * 2, naive.cycles);
    EXPECT_LT(hw.caUtilization(), 0.2);
    // All ranks still did their full work.
    for (const auto &rank : hw.ranks)
        EXPECT_EQ(rank.screen_bytes, naive.ranks[0].screen_bytes);
}

TEST(ChannelSim, InstructionAccounting)
{
    SystemConfig cfg;
    ChannelSim sim(cfg, 2);
    const ChannelSimResult r = sim.run(channelJob(8192, 2));
    uint64_t expect = 0;
    for (const auto &rank : r.ranks)
        expect += rank.instructions;
    EXPECT_EQ(r.instructions_delivered, expect);
}

} // namespace
} // namespace enmc::runtime
