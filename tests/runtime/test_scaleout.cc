/**
 * @file
 * Tests for the scale-out (multi-node) ENMC model.
 */

#include <gtest/gtest.h>

#include "runtime/scaleout.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::runtime {
namespace {

JobSpec
globalJob(uint64_t l = 10'000'000)
{
    JobSpec spec;
    spec.categories = l;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.batch = 1;
    spec.candidates = l / 2500;
    spec.sigmoid = true;
    return spec;
}

TEST(ScaleOut, SingleNodeHasNoNetworkCost)
{
    ScaleOutConfig cfg;
    cfg.nodes = 1;
    const ScaleOutResult r = runScaleOut(cfg, globalJob());
    EXPECT_EQ(r.broadcast_seconds, 0.0);
    EXPECT_EQ(r.gather_seconds, 0.0);
    EXPECT_GT(r.classification_seconds, 0.0);
}

TEST(ScaleOut, ClassificationTimeShrinksWithNodes)
{
    ScaleOutConfig one;
    one.nodes = 1;
    ScaleOutConfig eight;
    eight.nodes = 8;
    const ScaleOutResult r1 = runScaleOut(one, globalJob());
    const ScaleOutResult r8 = runScaleOut(eight, globalJob());
    const double ratio =
        r1.classification_seconds / r8.classification_seconds;
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 10.0);
}

TEST(ScaleOut, SpeedupSaturatesWhenNetworkDominates)
{
    // A small problem: node work shrinks below the fixed network cost.
    const JobSpec small = globalJob(200'000);
    double prev_total = 1e9;
    double best_eff = 0.0;
    const ScaleOutResult solo = runScaleOut(ScaleOutConfig{1, {}, {}},
                                            small);
    for (uint64_t n : {2ull, 8ull, 32ull}) {
        ScaleOutConfig cfg;
        cfg.nodes = n;
        const ScaleOutResult r = runScaleOut(cfg, small);
        const double eff = solo.total() / (r.total() * n);
        best_eff = std::max(best_eff, eff);
        EXPECT_LE(r.total(), prev_total * 2.0); // never catastrophic
        prev_total = r.total();
    }
    // Parallel efficiency decays at this size.
    const ScaleOutResult wide = runScaleOut(ScaleOutConfig{32, {}, {}},
                                            small);
    EXPECT_LT(solo.total() / (wide.total() * 32), 0.8);
}

TEST(ScaleOut, SlowNetworkHurtsTotal)
{
    ScaleOutConfig fast;
    fast.nodes = 8;
    ScaleOutConfig slow = fast;
    slow.network.bandwidth = 1e9; // 8 Gb/s
    slow.network.latency = 100e-6;
    const JobSpec spec = globalJob(1'000'000);
    const ScaleOutResult rf = runScaleOut(fast, spec);
    const ScaleOutResult rs = runScaleOut(slow, spec);
    EXPECT_GT(rs.total(), rf.total());
    EXPECT_GT(rs.gather_seconds + rs.broadcast_seconds,
              rf.gather_seconds + rf.broadcast_seconds);
}

class ScaleOutFunctional : public ::testing::Test
{
  protected:
    ScaleOutFunctional()
        : model_(makeConfig())
    {
        screening::ScreenerConfig cfg;
        cfg.categories = 2048;
        cfg.hidden = 64;
        cfg.selection = screening::SelectionMode::Threshold;
        Rng rng(3);
        screener_ = std::make_unique<screening::Screener>(cfg, rng);
        Rng data = model_.makeRng(1);
        auto train = model_.sampleHiddenBatch(data, 128);
        screening::Trainer trainer(model_.classifier(), *screener_,
                                   screening::TrainerConfig{});
        trainer.train(train, {});
        screener_->freezeQuantized();
        const float cut = screening::tuneThreshold(*screener_, train, 48);
        screener_->setSelection(screening::SelectionMode::Threshold, 48,
                                cut);
        h_batch_ = model_.sampleHiddenBatch(data, 2);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 2048;
        cfg.hidden = 64;
        return cfg;
    }

    workloads::SyntheticModel model_;
    std::unique_ptr<screening::Screener> screener_;
    std::vector<tensor::Vector> h_batch_;
};

/** Node partitioning must be numerically transparent. */
class NodeCount : public ScaleOutFunctional,
                  public ::testing::WithParamInterface<uint64_t>
{
};

TEST_P(NodeCount, MergeEqualsSingleNode)
{
    ScaleOutConfig solo;
    solo.nodes = 1;
    ScaleOutConfig multi;
    multi.nodes = GetParam();
    const auto a = runScaleOutFunctional(solo, model_.classifier(),
                                         *screener_, h_batch_, 2);
    const auto b = runScaleOutFunctional(multi, model_.classifier(),
                                         *screener_, h_batch_, 2);
    for (size_t item = 0; item < h_batch_.size(); ++item) {
        for (size_t i = 0; i < 2048; ++i)
            EXPECT_FLOAT_EQ(b.logits[item][i], a.logits[item][i]);
        EXPECT_EQ(b.candidates[item].size(), a.candidates[item].size());
        for (size_t i = 0; i < 2048; ++i)
            EXPECT_FLOAT_EQ(b.probabilities[item][i],
                            a.probabilities[item][i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeCount, ::testing::Values(2, 3, 8));

TEST_F(ScaleOutFunctional, ShardedTopKMatchesGlobalTopK)
{
    // The gather-side merge: per-shard top-k lists through mergeTopK
    // must equal the unsharded selection for every cluster width.
    ScaleOutConfig cfg;
    cfg.nodes = 4;
    const auto res = runScaleOutFunctional(cfg, model_.classifier(),
                                           *screener_, h_batch_, 2);
    for (const uint64_t nodes : {1ull, 2ull, 5ull, 64ull, 5000ull}) {
        const auto sharded = scaleOutTopK(res, nodes, 10);
        ASSERT_EQ(sharded.size(), h_batch_.size());
        for (size_t item = 0; item < h_batch_.size(); ++item) {
            const auto ref =
                tensor::topkIndices(res.probabilities[item], 10);
            EXPECT_EQ(sharded[item], ref) << "nodes=" << nodes;
        }
    }
}

TEST_F(ScaleOutFunctional, MatchesPlainFunctionalRun)
{
    ScaleOutConfig cfg;
    cfg.nodes = 4;
    const auto scale = runScaleOutFunctional(cfg, model_.classifier(),
                                             *screener_, h_batch_, 2);
    EnmcSystem sys{SystemConfig{}};
    const auto plain = sys.runFunctional(model_.classifier(), *screener_,
                                         h_batch_, 8);
    for (size_t item = 0; item < h_batch_.size(); ++item)
        for (size_t i = 0; i < 2048; ++i)
            EXPECT_FLOAT_EQ(scale.logits[item][i], plain.logits[item][i]);
}

} // namespace
} // namespace enmc::runtime
