/**
 * @file
 * Tests for the programmer-facing EnmcClassifier API (Fig. 9).
 */

#include <gtest/gtest.h>

#include "runtime/api.h"
#include "tensor/topk.h"
#include "workloads/synthetic.h"

namespace enmc::runtime {
namespace {

class ApiTest : public ::testing::Test
{
  protected:
    ApiTest()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 160)),
          val_(model_.sampleHiddenBatch(rng_, 48))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    ClassifierOptions
    options(size_t candidates = 48)
    {
        ClassifierOptions opt;
        opt.candidates = candidates;
        return opt;
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
};

TEST_F(ApiTest, CalibrateTrainsAndTunes)
{
    EnmcClassifier clf(model_.classifier(), options());
    EXPECT_FALSE(clf.calibrated());
    const auto report = clf.calibrate(train_, val_);
    EXPECT_TRUE(clf.calibrated());
    EXPECT_GT(report.epochs.size(), 0u);
    EXPECT_LT(report.final_val_mse, 5.0);
    EXPECT_TRUE(clf.screener().quantizedFrozen());
    EXPECT_EQ(clf.screener().config().selection,
              screening::SelectionMode::Threshold);
}

TEST_F(ApiTest, ForwardAgreesWithFullClassification)
{
    EnmcClassifier clf(model_.classifier(), options());
    clf.calibrate(train_, val_);
    const auto h_batch = model_.sampleHiddenBatch(rng_, 8);
    const auto approx = clf.forward(h_batch, 5);
    const auto exact = clf.forwardFull(h_batch, 5);
    ASSERT_EQ(approx.size(), exact.size());
    size_t top1_match = 0;
    for (size_t i = 0; i < approx.size(); ++i)
        top1_match += (approx[i].topk[0] == exact[i].topk[0]);
    EXPECT_GE(top1_match, approx.size() - 1);
}

TEST_F(ApiTest, ForwardReportsCyclesAndCandidates)
{
    EnmcClassifier clf(model_.classifier(), options());
    clf.calibrate(train_, val_);
    const auto out = clf.forward(model_.sampleHiddenBatch(rng_, 2), 3);
    EXPECT_GT(clf.lastRankCycles(), 0u);
    for (const auto &o : out) {
        EXPECT_EQ(o.topk.size(), 3u);
        EXPECT_FALSE(o.candidates.empty());
        EXPECT_EQ(o.probabilities.size(), 1024u);
    }
}

TEST_F(ApiTest, TopkProbabilitiesDescending)
{
    EnmcClassifier clf(model_.classifier(), options());
    clf.calibrate(train_, val_);
    const auto out = clf.forward(model_.sampleHiddenBatch(rng_, 1), 8);
    const auto &o = out[0];
    for (size_t i = 0; i + 1 < o.topk.size(); ++i)
        EXPECT_GE(o.probabilities[o.topk[i]],
                  o.probabilities[o.topk[i + 1]]);
}

TEST_F(ApiTest, MoreCandidatesBetterOrEqualAgreement)
{
    EnmcClassifier small(model_.classifier(), options(16));
    EnmcClassifier large(model_.classifier(), options(128));
    small.calibrate(train_, val_);
    large.calibrate(train_, val_);
    const auto h_batch = model_.sampleHiddenBatch(rng_, 12);
    const auto exact = small.forwardFull(h_batch, 3);
    auto agreement = [&](EnmcClassifier &clf) {
        const auto got = clf.forward(h_batch, 3);
        double agree = 0.0;
        for (size_t i = 0; i < got.size(); ++i)
            agree += tensor::recall(got[i].topk, exact[i].topk);
        return agree / got.size();
    };
    EXPECT_GE(agreement(large) + 0.05, agreement(small));
}

TEST_F(ApiTest, ForwardBeforeCalibratePanics)
{
    EnmcClassifier clf(model_.classifier(), options());
    EXPECT_DEATH((void)clf.forward(model_.sampleHiddenBatch(rng_, 1), 1),
                 "calibrate");
}

} // namespace
} // namespace enmc::runtime
