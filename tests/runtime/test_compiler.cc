/**
 * @file
 * Tests for the classification-to-ISA compiler.
 */

#include <gtest/gtest.h>

#include "runtime/compiler.h"

namespace enmc::runtime {
namespace {

using namespace ::enmc::arch;

RankTask
task(uint64_t l = 1024, uint64_t d = 512, uint64_t k = 128)
{
    RankTask t;
    t.categories = l;
    t.hidden = d;
    t.reduced = k;
    t.batch = 1;
    t.screen_weight_base = 0x1000;
    t.class_weight_base = 0x100000;
    t.feature_base = 0x200000;
    t.bias_base = 0x300000;
    t.output_base = 0x400000;
    t.threshold = 1.5f;
    return t;
}

TEST(Compiler, TileRowsFromBufferHalves)
{
    EnmcConfig cfg; // 256B weight buffer -> 128B halves
    // k=128 INT4 -> 64 B rows -> 2 rows per tile.
    EXPECT_EQ(screeningTileRows(task(), cfg), 2u);
    // k=512 INT4 -> 256 B rows -> 1 row per tile (minimum).
    EXPECT_EQ(screeningTileRows(task(1024, 2048, 512), cfg), 1u);
}

TEST(Compiler, ProgramStructure)
{
    EnmcConfig cfg;
    const RankTask t = task();
    const CompiledJob job = compileClassification(t, cfg);
    EXPECT_EQ(job.tiles, 512u);
    // 11 INITs + 1 feature LDR + 3 per tile + BARRIER + SOFTMAX + RETURN.
    EXPECT_EQ(job.program.size(), 11u + 1 + 3 * 512 + 3);

    // Prologue: INITs first.
    for (int i = 0; i < 11; ++i)
        EXPECT_EQ(job.program[i].op, Opcode::Reg) << "inst " << i;
    EXPECT_EQ(job.program[11].op, Opcode::Ldr);
    EXPECT_EQ(job.program[11].buf0, BufferId::ScreenFeature);

    // Epilogue.
    const size_t n = job.program.size();
    EXPECT_EQ(job.program[n - 3].op, Opcode::Barrier);
    EXPECT_EQ(job.program[n - 2].op, Opcode::Softmax);
    EXPECT_EQ(job.program[n - 1].op, Opcode::Return);
}

TEST(Compiler, SigmoidTaskUsesSigmoidOpcode)
{
    EnmcConfig cfg;
    RankTask t = task();
    t.sigmoid = true;
    const CompiledJob job = compileClassification(t, cfg);
    EXPECT_EQ(job.program[job.program.size() - 2].op, Opcode::Sigmoid);
}

TEST(Compiler, TileAddressesAdvanceByTileBytes)
{
    EnmcConfig cfg;
    const RankTask t = task();
    const CompiledJob job = compileClassification(t, cfg);
    const uint64_t tile_bytes = job.tile_rows * t.screenRowBytes();
    uint64_t tile = 0;
    for (const auto &inst : job.program) {
        if (inst.op == Opcode::Ldr && inst.buf0 == BufferId::ScreenWeight) {
            EXPECT_EQ(inst.payload,
                      t.screen_weight_base + tile * tile_bytes);
            ++tile;
        }
    }
    EXPECT_EQ(tile, job.tiles);
}

TEST(Compiler, InitRegistersCarryTaskParameters)
{
    EnmcConfig cfg;
    const RankTask t = task();
    const CompiledJob job = compileClassification(t, cfg);
    auto find_init = [&](StatusReg reg) -> uint64_t {
        for (const auto &inst : job.program)
            if (inst.op == Opcode::Reg && inst.reg_write && inst.reg == reg)
                return inst.payload;
        ADD_FAILURE() << "missing INIT " << statusRegName(reg);
        return 0;
    };
    EXPECT_EQ(find_init(StatusReg::Categories), t.categories);
    EXPECT_EQ(find_init(StatusReg::HiddenDim), t.hidden);
    EXPECT_EQ(find_init(StatusReg::ReducedDim), t.reduced);
    EXPECT_EQ(find_init(StatusReg::ScreenWeightBase), t.screen_weight_base);
    EXPECT_EQ(find_init(StatusReg::TileRows), job.tile_rows);
}

TEST(Compiler, EveryInstructionEncodes)
{
    EnmcConfig cfg;
    const CompiledJob job = compileClassification(task(), cfg);
    for (const auto &inst : job.program) {
        const Instruction back = decode(encode(inst));
        EXPECT_EQ(back.toString(), inst.toString());
    }
}

TEST(Compiler, NonDivisibleCategoriesCoveredByLastTile)
{
    EnmcConfig cfg;
    const RankTask t = task(1023); // not a multiple of 2
    const CompiledJob job = compileClassification(t, cfg);
    EXPECT_EQ(job.tiles, 512u); // 511 full + 1 remainder
}

TEST(CompilerDeathTest, MissingDimensionsRejected)
{
    EnmcConfig cfg;
    RankTask t;
    EXPECT_DEATH((void)compileClassification(t, cfg), "dimensions");
}

} // namespace
} // namespace enmc::runtime
