/**
 * @file
 * Accuracy tests for the Executor's special-function unit: the paper's
 * 4th-order Taylor exponential ("we approximate the exponential function
 * with Taylor expansion to the 4th order") and the softmax/sigmoid built
 * on it.
 *
 * Tolerances were calibrated against measurement: over [-87, 88] the
 * range-reduced 4th-order expansion stays within ~6.1e-5 relative error
 * of std::exp, softmax within ~1.2e-5 absolute of the exact softmax, and
 * sigmoid within ~1.4e-5 absolute — so the bounds below (1e-4 / 5e-5)
 * hold with margin but still catch an order-degradation regression (a
 * 3rd-order expansion misses them by orders of magnitude).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/ops.h"

namespace enmc::tensor {
namespace {

constexpr float kExpRelTol = 1e-4f;
constexpr float kProbAbsTol = 5e-5f;

TEST(SfuExp, RelativeErrorBoundedAcrossWorkingRange)
{
    // Dense sweep of the SFU's working range, including the bin edges of
    // the range reduction (multiples of ln2/2) where error peaks.
    float max_rel = 0.0f;
    for (float x = -87.0f; x <= 88.0f; x += 0.01f) {
        const float approx = taylorExp4(x);
        const float exact = std::exp(x);
        const float rel = std::abs(approx - exact) / exact;
        max_rel = std::max(max_rel, rel);
        ASSERT_LT(rel, kExpRelTol) << "x=" << x;
    }
    // The bound is tight enough to mean something: the worst case is
    // within one decade of the tolerance, not 1e-9.
    EXPECT_GT(max_rel, kExpRelTol / 100.0f);
}

TEST(SfuExp, RandomArgumentsStayWithinBound)
{
    Rng rng(20260806);
    for (int i = 0; i < 100000; ++i) {
        const float x = static_cast<float>(rng.uniform(-87.0, 88.0));
        const float rel =
            std::abs(taylorExp4(x) - std::exp(x)) / std::exp(x);
        ASSERT_LT(rel, kExpRelTol) << "x=" << x;
    }
}

TEST(SfuExp, UnderflowCutoffReturnsZero)
{
    EXPECT_EQ(taylorExp4(-88.0f), 0.0f);
    EXPECT_EQ(taylorExp4(-1000.0f), 0.0f);
}

TEST(SfuExp, OverflowCutoffReturnsInfinity)
{
    EXPECT_TRUE(std::isinf(taylorExp4(89.0f)));
    EXPECT_TRUE(std::isinf(taylorExp4(1000.0f)));
}

TEST(SfuExp, ExactAtZero)
{
    EXPECT_FLOAT_EQ(taylorExp4(0.0f), 1.0f);
}

/** Exact reference softmax in double precision. */
std::vector<float>
softmaxRef(const std::vector<float> &z)
{
    double maxz = z[0];
    for (float v : z)
        maxz = std::max(maxz, static_cast<double>(v));
    double sum = 0.0;
    std::vector<double> e(z.size());
    for (size_t i = 0; i < z.size(); ++i) {
        e[i] = std::exp(static_cast<double>(z[i]) - maxz);
        sum += e[i];
    }
    std::vector<float> out(z.size());
    for (size_t i = 0; i < z.size(); ++i)
        out[i] = static_cast<float>(e[i] / sum);
    return out;
}

TEST(SfuSoftmax, ProbabilitiesWithinToleranceOfExact)
{
    Rng rng(42);
    for (int trial = 0; trial < 2000; ++trial) {
        const size_t n = static_cast<size_t>(rng.uniformInt(2, 64));
        std::vector<float> z(n);
        for (float &v : z)
            v = static_cast<float>(rng.uniform(-12.0, 12.0));

        const Vector approx = softmaxTaylor(std::span<const float>(z));
        const std::vector<float> exact = softmaxRef(z);

        float sum = 0.0f;
        size_t argmax_a = 0, argmax_e = 0;
        for (size_t i = 0; i < n; ++i) {
            ASSERT_LT(std::abs(approx[i] - exact[i]), kProbAbsTol)
                << "trial=" << trial << " i=" << i;
            sum += approx[i];
            if (approx[i] > approx[argmax_a])
                argmax_a = i;
            if (exact[i] > exact[argmax_e])
                argmax_e = i;
        }
        // A distribution: sums to one...
        ASSERT_NEAR(sum, 1.0f, 1e-4f) << "trial=" << trial;
        // ...and never flips the winning category unless it was a
        // numerical tie to begin with.
        if (argmax_a != argmax_e)
            ASSERT_LT(std::abs(exact[argmax_a] - exact[argmax_e]),
                      kProbAbsTol)
                << "trial=" << trial;
    }
}

TEST(SfuSigmoid, WithinToleranceOfExact)
{
    Rng rng(7);
    std::vector<float> z;
    for (float x = -30.0f; x <= 30.0f; x += 0.05f)
        z.push_back(x);
    for (int i = 0; i < 10000; ++i)
        z.push_back(static_cast<float>(rng.uniform(-30.0, 30.0)));

    const Vector approx = sigmoidTaylor(std::span<const float>(z));
    for (size_t i = 0; i < z.size(); ++i) {
        const float exact =
            static_cast<float>(1.0 / (1.0 + std::exp(-double(z[i]))));
        ASSERT_LT(std::abs(approx[i] - exact), kProbAbsTol) << z[i];
        ASSERT_GE(approx[i], 0.0f);
        ASSERT_LE(approx[i], 1.0f);
    }
}

TEST(SfuSigmoid, SymmetryAroundZero)
{
    // sigmoid(-x) == 1 - sigmoid(x) must survive the approximation
    // within tolerance (the multi-label scorer relies on calibrated
    // probabilities on both sides of the threshold).
    std::vector<float> z;
    for (float x = 0.0f; x <= 20.0f; x += 0.25f) {
        z.push_back(x);
        z.push_back(-x);
    }
    const Vector s = sigmoidTaylor(std::span<const float>(z));
    for (size_t i = 0; i < z.size(); i += 2)
        EXPECT_NEAR(s[i] + s[i + 1], 1.0f, 2.0f * kProbAbsTol) << z[i];
}

} // namespace
} // namespace enmc::tensor
