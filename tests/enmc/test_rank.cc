/**
 * @file
 * Tests for the ENMC rank microarchitecture model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "enmc/rank.h"
#include "runtime/compiler.h"
#include "screening/pipeline.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::arch {
namespace {

dram::Organization
rankOrg()
{
    return dram::Organization::paperTable3().singleRankView();
}

/** Timing-only task with simple defaults. */
RankTask
timingTask(uint64_t l = 2048, uint64_t d = 512, uint64_t k = 128,
           uint64_t batch = 1, uint64_t cands = 16)
{
    RankTask t;
    t.categories = l;
    t.hidden = d;
    t.reduced = k;
    t.batch = batch;
    t.expected_candidates = cands;
    t.screen_weight_base = 0;
    t.class_weight_base = 1ull << 24;
    t.bias_base = 1ull << 25;
    t.feature_base = 1ull << 26;
    t.output_base = 1ull << 27;
    return t;
}

RankResult
runTask(const RankTask &task)
{
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    return rank.run(job.program, task);
}

TEST(EnmcRank, CompletesAndCountsTraffic)
{
    const RankTask task = timingTask();
    const RankResult r = runTask(task);
    EXPECT_GT(r.cycles, 0u);
    // Screening traffic: l rows x 64 B (k=128 INT4) + features.
    EXPECT_GE(r.screen_bytes, 2048u * 64u);
    // Executor: 16 candidates x 2 x 2 KiB.
    EXPECT_EQ(r.exec_bytes, 16u * 2u * 2048u);
    EXPECT_EQ(r.candidates, 16u);
    EXPECT_GT(r.instructions, 3u * 1024u); // 1024 tiles x 3 instructions
}

TEST(EnmcRank, BandwidthBoundCycleCount)
{
    // Screening is the paper's streaming phase: cycles must be within ~2x
    // of the pure data-bus bound and never below it.
    const RankTask task = timingTask(8192, 512, 128, 1, 1);
    const RankResult r = runTask(task);
    const uint64_t total_bytes = r.screen_bytes + r.exec_bytes;
    const Cycles bus_bound = total_bytes / 64 * 4; // tBL per 64B line
    EXPECT_GE(r.cycles, bus_bound);
    EXPECT_LE(r.cycles, bus_bound * 2);
}

TEST(EnmcRank, CyclesScaleLinearlyWithCategories)
{
    const RankResult small = runTask(timingTask(2048));
    const RankResult large = runTask(timingTask(8192));
    const double ratio = static_cast<double>(large.cycles) / small.cycles;
    EXPECT_GT(ratio, 2.7); // fixed startup cost makes it slightly sublinear
    EXPECT_LT(ratio, 5.0);
}

TEST(EnmcRank, BatchReusesWeightTraffic)
{
    // Screening weights are shared across the batch: batch-4 traffic is
    // (nearly) the same, so cycles grow sublinearly.
    const RankResult b1 = runTask(timingTask(4096, 512, 128, 1, 16));
    const RankResult b4 = runTask(timingTask(4096, 512, 128, 4, 16));
    EXPECT_LT(b4.cycles, 3 * b1.cycles);
    EXPECT_LE(b4.screen_bytes, b1.screen_bytes + 4096); // + feature bytes
}

TEST(EnmcRank, MoreCandidatesMoreExecutorTraffic)
{
    const RankResult few = runTask(timingTask(4096, 512, 128, 1, 8));
    const RankResult many = runTask(timingTask(4096, 512, 128, 1, 64));
    EXPECT_GT(many.exec_bytes, few.exec_bytes * 7);
    EXPECT_GT(many.cycles, few.cycles);
}

TEST(EnmcRank, DualModuleOverlapsScreeningAndExecution)
{
    // The dual-module benefit: Executor *compute* overlaps the Screener's
    // streaming. Throttle the FP32 array so candidate compute dominates,
    // then verify screening time hides underneath it instead of adding.
    EnmcConfig slow;
    slow.fp32_macs = 1;
    EnmcRank rank(slow, rankOrg(), dram::Timing::ddr4_2400());
    const RankTask task = timingTask(8192, 512, 128, 1, 128);
    const auto job = runtime::compileClassification(task, slow);
    const RankResult both = rank.run(job.program, task);

    // 128 candidates x ceil(512/1) logic cycles x 3 (400 -> 1200 MHz).
    const Cycles exec_compute = 128ull * 512 * 3;
    EXPECT_GE(both.cycles, exec_compute);
    // Screening alone takes ~36k cycles; with overlap, the total must be
    // far below exec_compute + screening.
    const RankResult screen_only = runTask(timingTask(8192, 512, 128, 1, 1));
    EXPECT_LT(both.cycles, exec_compute + screen_only.cycles / 2);
}

TEST(EnmcRank, SyntheticCandidateCountMatchesExpectation)
{
    for (uint64_t expect : {1ull, 7ull, 33ull, 200ull}) {
        const RankResult r = runTask(timingTask(4096, 512, 128, 1, expect));
        EXPECT_EQ(r.candidates, expect) << "expected " << expect;
    }
}

TEST(EnmcRank, StatusRegistersReflectProgram)
{
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const RankTask task = timingTask();
    const auto job = runtime::compileClassification(task, cfg);
    const RankResult r = rank.run(job.program, task);
    EXPECT_EQ(rank.statusReg(StatusReg::Categories), task.categories);
    EXPECT_EQ(rank.statusReg(StatusReg::HiddenDim), task.hidden);
    EXPECT_EQ(rank.statusReg(StatusReg::ReducedDim), task.reduced);
    EXPECT_EQ(rank.statusReg(StatusReg::InstCount), r.instructions);
    EXPECT_EQ(rank.statusReg(StatusReg::CandidateCount), r.candidates);
}

TEST(EnmcRank, GeneratorEmitsTwoInstructionsPerCandidate)
{
    const RankResult r = runTask(timingTask(4096, 512, 128, 1, 50));
    EXPECT_EQ(r.generated_instructions, 100u);
}

TEST(EnmcRank, OutputBytesCoverCandidates)
{
    const RankResult r = runTask(timingTask(2048, 512, 128, 2, 20));
    // Per item 8 B normalizer + 8 B per candidate.
    EXPECT_EQ(r.output_bytes, 2u * 8 + r.candidates * 8);
}

TEST(EnmcRank, Int2ScreeningMovesFewerBytes)
{
    RankTask t4 = timingTask();
    RankTask t2 = timingTask();
    t2.quant = tensor::QuantBits::Int2;
    const RankResult r4 = runTask(t4);
    const RankResult r2 = runTask(t2);
    EXPECT_LT(r2.screen_bytes, r4.screen_bytes);
    EXPECT_LE(r2.cycles, r4.cycles);
}

/** Functional mode: the rank's numbers must match the reference pipeline. */
class FunctionalRank : public ::testing::Test
{
  protected:
    FunctionalRank()
        : model_(makeConfig())
    {
        screening::ScreenerConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        cfg.reduction_scale = 0.25;
        cfg.selection = screening::SelectionMode::Threshold;
        Rng rng(3);
        screener_ = std::make_unique<screening::Screener>(cfg, rng);
        Rng data = model_.makeRng(1);
        auto train = model_.sampleHiddenBatch(data, 128);
        screening::Trainer trainer(model_.classifier(), *screener_,
                                   screening::TrainerConfig{});
        trainer.train(train, {});
        screener_->freezeQuantized();
        const float cut = screening::tuneThreshold(*screener_, train, 24);
        screener_->setSelection(screening::SelectionMode::Threshold, 24,
                                cut);
        h_batch_ = model_.sampleHiddenBatch(data, 2);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    RankTask
    functionalTask()
    {
        RankTask t;
        t.categories = 1024;
        t.hidden = 64;
        t.reduced = screener_->reducedDim();
        t.quant = tensor::QuantBits::Int4;
        t.batch = h_batch_.size();
        t.threshold = screener_->config().threshold;
        t.class_weight_base = 1ull << 24;
        t.bias_base = 1ull << 25;
        t.feature_base = 1ull << 26;
        t.output_base = 1ull << 27;
        t.screen_weights = &screener_->quantizedWeights();
        t.screen_bias = &screener_->bias();
        t.class_weights = &model_.classifier().weights();
        t.class_bias = &model_.classifier().bias();
        for (const auto &h : h_batch_) {
            t.features.push_back(h);
            t.features_q.push_back(tensor::quantize(
                screener_->project(h), tensor::QuantBits::Int4));
        }
        return t;
    }

    workloads::SyntheticModel model_;
    std::unique_ptr<screening::Screener> screener_;
    std::vector<tensor::Vector> h_batch_;
};

TEST_F(FunctionalRank, BitMatchesReferencePipeline)
{
    const RankTask task = functionalTask();
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    const RankResult r = rank.run(job.program, task);

    screening::Pipeline pipe(model_.classifier(), *screener_);
    for (size_t item = 0; item < h_batch_.size(); ++item) {
        const auto ref = pipe.infer(h_batch_[item]);
        ASSERT_EQ(r.logits[item].size(), ref.logits.size());
        for (size_t i = 0; i < ref.logits.size(); ++i)
            EXPECT_FLOAT_EQ(r.logits[item][i], ref.logits[i])
                << "item " << item << " logit " << i;
        // Same candidate sets (order may differ).
        auto a = r.candidate_ids[item];
        auto b = ref.candidates;
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        EXPECT_EQ(a, b);
    }
}

TEST_F(FunctionalRank, CandidateCountMatchesThresholdSelection)
{
    const RankTask task = functionalTask();
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    const RankResult r = rank.run(job.program, task);
    uint64_t total = 0;
    for (const auto &ids : r.candidate_ids)
        total += ids.size();
    EXPECT_EQ(r.candidates, total);
    EXPECT_GT(total, 0u);
}

} // namespace
} // namespace enmc::arch

namespace enmc::arch {
namespace {

TEST(Colocation, HostRequestsServedDuringClassification)
{
    // "Our ENMC DIMM can also support regular memory requests": inject
    // host reads while a classification program runs; both must make
    // progress and every host request must complete.
    RankTask task = timingTask(8192, 512, 128, 1, 16);
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    rank.start(job.program, task);

    uint64_t injected = 0, completed = 0;
    Cycles lat_sum = 0;
    Rng rng(7);
    Cycles now = 0;
    while (!rank.done()) {
        ++now;
        if ((now % 50) == 0) {
            dram::Request req;
            req.addr = (1ull << 30) + (rng.uniformInt(0, 4095) << 6);
            const Cycles at = now;
            req.on_complete = [&completed, &lat_sum,
                               at](const dram::Request &r) {
                ++completed;
                lat_sum += r.complete - at;
            };
            if (rank.injectHostRequest(std::move(req)))
                ++injected;
        }
        rank.tryDeliverInstruction();
        rank.tick();
        ASSERT_LT(now, 10'000'000u);
    }
    const RankResult r = rank.takeResult();
    EXPECT_GT(injected, 100u);
    EXPECT_EQ(completed, injected);
    EXPECT_EQ(r.candidates, 16u);
    // Interference exists but stays moderate at this intensity.
    const RankResult clean = runTask(timingTask(8192, 512, 128, 1, 16));
    EXPECT_GT(r.cycles, clean.cycles);
    EXPECT_LT(r.cycles, clean.cycles * 2);
    // Host latency is bounded (no starvation).
    EXPECT_LT(lat_sum / completed, 500u);
}

TEST(Colocation, HostRequestRejectedWhenQueueFull)
{
    RankTask task = timingTask(1024, 512, 128, 1, 1);
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    rank.start(job.program, task);
    // Flood without ticking: the 64-entry queue must eventually refuse.
    int accepted = 0;
    for (int i = 0; i < 200; ++i) {
        dram::Request req;
        req.addr = (1ull << 30) + (static_cast<Addr>(i) << 6);
        if (rank.injectHostRequest(std::move(req)))
            ++accepted;
    }
    EXPECT_LE(accepted, 64);
    // Drain so the watchdog-free teardown is clean.
    while (!rank.done())
        { rank.tryDeliverInstruction(); rank.tick(); }
}

} // namespace
} // namespace enmc::arch

namespace enmc::arch {
namespace {

TEST(SramBuffers, ReserveReleaseAndPeak)
{
    SramBuffer buf("test", 256);
    EXPECT_TRUE(buf.fits(256));
    buf.reserve(100);
    buf.reserve(100);
    EXPECT_FALSE(buf.fits(100));
    EXPECT_EQ(buf.occupied(), 200u);
    EXPECT_EQ(buf.peak(), 200u);
    buf.release(150);
    EXPECT_EQ(buf.occupied(), 50u);
    EXPECT_EQ(buf.peak(), 200u); // peak is sticky
    EXPECT_EQ(buf.reservations(), 2u);
    buf.clear();
    EXPECT_EQ(buf.occupied(), 0u);
}

TEST(SramBuffersDeathTest, OverflowPanics)
{
    SramBuffer buf("tiny", 64);
    buf.reserve(64);
    EXPECT_DEATH(buf.reserve(1), "overflow");
}

TEST(SramBuffersDeathTest, UnderflowPanics)
{
    SramBuffer buf("tiny", 64);
    buf.reserve(8);
    EXPECT_DEATH(buf.release(16), "underflow");
}

TEST(EnmcRank, PeakOccupanciesRespectTable3Capacities)
{
    // The tiling must fit the 256 B buffers for every batch size — the
    // capacity proof the SramBuffer model provides.
    for (uint64_t batch : {1ull, 2ull, 4ull, 8ull}) {
        const RankTask task = timingTask(4096, 512, 128, batch, 16);
        const RankResult r = runTask(task);
        EnmcConfig cfg;
        EXPECT_LE(r.peak_weight_buf, cfg.screen_weight_buf) << batch;
        EXPECT_LE(r.peak_psum_buf, cfg.psum_buf) << batch;
        EXPECT_LE(r.peak_exec_buf,
                  cfg.exec_weight_buf + cfg.exec_feature_buf)
            << batch;
        EXPECT_LE(r.peak_output_buf, cfg.output_buf) << batch;
        EXPECT_GT(r.peak_weight_buf, 0u);
        EXPECT_GT(r.peak_psum_buf, 0u);
    }
}

TEST(EnmcRank, LargeBatchShrinksTileRows)
{
    // PSUM capacity caps rows x batch: with small rows (k=32 INT4 ->
    // 16 B) the weight half allows 8 rows, but batch 16 cuts it to 4.
    RankTask t1 = timingTask(4096, 512, 32, 1, 16);
    RankTask t16 = timingTask(4096, 512, 32, 16, 16);
    EnmcConfig cfg;
    EXPECT_EQ(runtime::screeningTileRows(t1, cfg), 8u);
    EXPECT_EQ(runtime::screeningTileRows(t16, cfg), 4u);
}

TEST(CompilerDeathTest2, BatchBeyondPsumRejected)
{
    RankTask t = timingTask(1024, 512, 128, 128, 4); // 128*4B > 256B psum
    EnmcConfig cfg;
    EXPECT_DEATH((void)runtime::compileClassification(t, cfg),
                 "batch too large");
}

} // namespace
} // namespace enmc::arch

namespace enmc::arch {
namespace {

/**
 * The paper's execution flow (Fig. 10): the host offloads the program,
 * then polls status registers with QUERY instructions until the DIMM
 * reports completion.
 */
TEST(HostPolling, QueryDetectsCompletion)
{
    const RankTask task = timingTask(4096, 512, 128, 1, 16);
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    rank.start(job.program, task);

    const Cycles poll_interval = 500;
    Cycles now = 0;
    Cycles detected_at = 0;
    uint64_t polls = 0;
    bool program_delivered = false;
    while (detected_at == 0) {
        ++now;
        ASSERT_LT(now, 10'000'000u);
        if (!program_delivered) {
            if (!rank.tryDeliverInstruction() &&
                rank.pendingInstruction() == nullptr) {
                program_delivered = true;
            }
        } else if (now % poll_interval == 0) {
            // Host QUERY poll: read the status register (check before
            // injecting the next poll, which itself occupies the FIFO).
            if (rank.statusReg(StatusReg::Status) == 0 && rank.done())
                detected_at = now;
            else
                rank.injectInstruction(makeQuery(StatusReg::Status));
            ++polls;
        }
        rank.tick();
    }
    const RankResult r = rank.takeResult();
    EXPECT_GE(polls, 2u);
    // Detection lags true completion by at most one polling interval.
    EXPECT_GE(detected_at, r.cycles - poll_interval - 1);
    EXPECT_LE(detected_at, r.cycles + poll_interval);
}

TEST(HostPolling, StatusBitsTrackPhases)
{
    const RankTask task = timingTask(2048, 512, 128, 1, 8);
    EnmcConfig cfg;
    EnmcRank rank(cfg, rankOrg(), dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    rank.start(job.program, task);

    bool saw_busy = false;
    Cycles now = 0;
    while (!rank.done()) {
        ++now;
        ASSERT_LT(now, 10'000'000u);
        rank.tryDeliverInstruction();
        rank.tick();
        if (rank.statusReg(StatusReg::Status) & 1)
            saw_busy = true;
    }
    EXPECT_TRUE(saw_busy);
    EXPECT_EQ(rank.statusReg(StatusReg::Status), 0u);
    (void)rank.takeResult();
}

} // namespace
} // namespace enmc::arch

namespace enmc::arch {
namespace {

/**
 * Property sweep: for every (categories, reduced-dim, batch, quant)
 * combination, the rank must (a) complete, (b) move exactly the packed
 * screening bytes + candidate bytes, (c) stay at or above the data-bus
 * bound, and (d) respect every SRAM capacity.
 */
struct RankSweepParam
{
    uint64_t l;
    uint64_t k;
    uint64_t batch;
    tensor::QuantBits quant;
};

class RankSweep : public ::testing::TestWithParam<RankSweepParam>
{
};

TEST_P(RankSweep, InvariantsHold)
{
    const RankSweepParam p = GetParam();
    RankTask task = timingTask(p.l, 512, p.k, p.batch, 16);
    task.quant = p.quant;
    const RankResult r = runTask(task);

    // (a) completion with the synthetic candidate budget (per item).
    EXPECT_EQ(r.candidates, 16u * p.batch);

    // (b) traffic: screening rows (packed) + features + candidate rows.
    const uint64_t bits =
        p.quant == tensor::QuantBits::Fp32
            ? 32
            : static_cast<uint64_t>(tensor::quantBitCount(p.quant));
    const uint64_t row_bytes = (p.k * bits + 7) / 8;
    EXPECT_GE(r.screen_bytes, p.l * row_bytes);
    EXPECT_EQ(r.exec_bytes, r.candidates * 2 * 512 * 4);

    // (c) the data bus is never beaten.
    const Cycles bus_bound = (r.screen_bytes + r.exec_bytes) / 64 * 4;
    EXPECT_GE(r.cycles, bus_bound);

    // (d) SRAM capacities (panics would have fired already; check peaks).
    EnmcConfig cfg;
    EXPECT_LE(r.peak_weight_buf, cfg.screen_weight_buf);
    EXPECT_LE(r.peak_psum_buf, cfg.psum_buf);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RankSweep,
    ::testing::Values(
        RankSweepParam{1024, 128, 1, tensor::QuantBits::Int4},
        RankSweepParam{1024, 128, 4, tensor::QuantBits::Int4},
        RankSweepParam{1024, 128, 1, tensor::QuantBits::Int8},
        RankSweepParam{1024, 128, 1, tensor::QuantBits::Int2},
        RankSweepParam{1024, 375, 1, tensor::QuantBits::Int4},
        RankSweepParam{1024, 375, 4, tensor::QuantBits::Int4},
        RankSweepParam{8192, 128, 2, tensor::QuantBits::Int4},
        RankSweepParam{8192, 256, 1, tensor::QuantBits::Int8},
        RankSweepParam{333, 64, 3, tensor::QuantBits::Int4},
        RankSweepParam{4096, 128, 8, tensor::QuantBits::Int4}),
    [](const ::testing::TestParamInfo<RankSweepParam> &info) {
        const auto &p = info.param;
        return "l" + std::to_string(p.l) + "k" + std::to_string(p.k) +
               "b" + std::to_string(p.batch) + "q" +
               std::to_string(static_cast<int>(p.quant));
    });

} // namespace
} // namespace enmc::arch
