/**
 * @file
 * Tests for the ENMC instruction set encoding (Table 1 / Fig. 8).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "enmc/isa.h"

namespace enmc::arch {
namespace {

TEST(Isa, InitEncoding)
{
    const Instruction i = makeInit(StatusReg::Categories, 12345);
    const EncodedInstruction e = encode(i);
    // Opcode 9 in bits 12..8, RW bit set, reg id in bits 6..2.
    EXPECT_EQ((e.ca >> 8) & 0x1f, 9u);
    EXPECT_EQ((e.ca >> 7) & 1, 1u);
    EXPECT_EQ((e.ca >> 2) & 0x1f,
              static_cast<uint16_t>(StatusReg::Categories));
    EXPECT_TRUE(e.has_payload);
    EXPECT_EQ(e.payload, 12345u);
}

TEST(Isa, QueryHasNoPayload)
{
    const EncodedInstruction e = encode(makeQuery(StatusReg::InstCount));
    EXPECT_FALSE(e.has_payload);
    EXPECT_EQ((e.ca >> 7) & 1, 0u);
}

TEST(Isa, MulAddFp32MatchesFig8Opcode)
{
    const Instruction i = makeCompute(Opcode::MulAddFp32,
                                      BufferId::ExecFeature,
                                      BufferId::ExecWeight);
    const EncodedInstruction e = encode(i);
    EXPECT_EQ((e.ca >> 8) & 0x1f, 2u); // Fig. 8: Opcode=2
    EXPECT_EQ((e.ca >> 4) & 0xf, static_cast<uint16_t>(BufferId::ExecFeature));
    EXPECT_EQ(e.ca & 0xf, static_cast<uint16_t>(BufferId::ExecWeight));
}

TEST(Isa, ThirteenBitLimit)
{
    for (auto op : {Opcode::Nop, Opcode::MulAddInt4, Opcode::Ldr,
                    Opcode::Reg, Opcode::Filter, Opcode::Clr}) {
        Instruction i;
        i.op = op;
        if (op == Opcode::Ldr)
            i.has_payload = true;
        const EncodedInstruction e = encode(i);
        EXPECT_EQ(e.ca & ~0x1fffu, 0u) << opcodeName(op);
    }
}

/** Round-trip every instruction shape through encode/decode. */
class IsaRoundTrip : public ::testing::TestWithParam<Instruction>
{
};

TEST_P(IsaRoundTrip, EncodeDecodeIdentity)
{
    const Instruction &orig = GetParam();
    const Instruction back = decode(encode(orig));
    EXPECT_EQ(back.op, orig.op);
    EXPECT_EQ(back.toString(), orig.toString());
    if (orig.has_payload) {
        EXPECT_EQ(back.payload, orig.payload);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, IsaRoundTrip,
    ::testing::Values(
        makeInit(StatusReg::Threshold, 0xdeadbeefull),
        makeQuery(StatusReg::CandidateCount),
        makeLdr(BufferId::ScreenWeight, 0x123456789aull),
        makeStr(BufferId::Output, 0x40ull),
        makeMove(BufferId::ScreenPsum, BufferId::Output),
        makeCompute(Opcode::MulAddInt4, BufferId::ScreenFeature,
                    BufferId::ScreenWeight),
        makeCompute(Opcode::AddFp32, BufferId::ExecPsum,
                    BufferId::ExecWeight),
        makeCompute(Opcode::MulInt4, BufferId::ScreenFeature,
                    BufferId::ScreenWeight),
        makeFilter(BufferId::ScreenPsum),
        makeSpecial(Opcode::Softmax),
        makeSpecial(Opcode::Sigmoid),
        makeSpecial(Opcode::Barrier),
        makeSpecial(Opcode::Nop),
        makeSpecial(Opcode::Return),
        makeSpecial(Opcode::Clr)),
    [](const ::testing::TestParamInfo<Instruction> &info) {
        std::string name = opcodeName(info.param.op);
        if (info.param.op == Opcode::Reg)
            name += info.param.reg_write ? "Init" : "Query";
        for (auto &c : name)
            if (c == '_')
                c = 'x';
        return name + std::to_string(info.index);
    });

TEST(Isa, DisassembleListsEveryInstruction)
{
    Program p{makeInit(StatusReg::HiddenDim, 512),
              makeLdr(BufferId::ScreenFeature, 0x1000),
              makeSpecial(Opcode::Return)};
    const std::string text = disassemble(p);
    EXPECT_NE(text.find("INIT hidden_dim, 512"), std::string::npos);
    EXPECT_NE(text.find("LDR sfeat, 0x1000"), std::string::npos);
    EXPECT_NE(text.find("RETURN"), std::string::npos);
}

TEST(Isa, NamesAreStable)
{
    EXPECT_STREQ(opcodeName(Opcode::MulAddInt4), "MUL_ADD_INT4");
    EXPECT_STREQ(bufferName(BufferId::Index), "index");
    EXPECT_STREQ(statusRegName(StatusReg::TileRows), "tile_rows");
}

TEST(IsaDeathTest, MalformedCaWordPanics)
{
    EncodedInstruction e;
    e.ca = 0x2000; // beyond 13 bits
    EXPECT_DEATH((void)decode(e), "malformed");
}

} // namespace
} // namespace enmc::arch

namespace enmc::arch {
namespace {

/** Fuzz: random valid instructions must round-trip for 10k draws. */
TEST(IsaFuzz, RandomInstructionsRoundTrip)
{
    Rng rng(2026);
    const Opcode ops[] = {Opcode::Nop, Opcode::MulAddInt4,
                          Opcode::MulAddFp32, Opcode::AddInt4,
                          Opcode::MulInt4, Opcode::AddFp32,
                          Opcode::MulFp32, Opcode::Ldr, Opcode::Str,
                          Opcode::Reg, Opcode::Move, Opcode::Filter,
                          Opcode::Softmax, Opcode::Sigmoid,
                          Opcode::Barrier, Opcode::Return, Opcode::Clr};
    for (int i = 0; i < 10000; ++i) {
        Instruction inst;
        inst.op = ops[rng.uniformInt(0, std::size(ops) - 1)];
        inst.buf0 = static_cast<BufferId>(rng.uniformInt(0, 7));
        inst.buf1 = static_cast<BufferId>(rng.uniformInt(0, 7));
        inst.reg = static_cast<StatusReg>(rng.uniformInt(
            0, static_cast<int>(StatusReg::NumRegs) - 1));
        inst.reg_write = rng.uniformInt(0, 1) != 0;
        if (inst.op == Opcode::Ldr || inst.op == Opcode::Str ||
            (inst.op == Opcode::Reg && inst.reg_write)) {
            inst.has_payload = true;
            inst.payload = rng();
        }
        const Instruction back = decode(encode(inst));
        ASSERT_EQ(back.op, inst.op) << i;
        ASSERT_EQ(back.toString(), inst.toString()) << i;
        if (inst.has_payload) {
            ASSERT_EQ(back.payload, inst.payload) << i;
        }
    }
}

} // namespace
} // namespace enmc::arch
