/**
 * @file
 * Tests for the ENMC instruction set encoding (Table 1 / Fig. 8).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "enmc/isa.h"

namespace enmc::arch {
namespace {

TEST(Isa, InitEncoding)
{
    const Instruction i = makeInit(StatusReg::Categories, 12345);
    const EncodedInstruction e = encode(i);
    // Opcode 9 in bits 12..8, RW bit set, reg id in bits 6..2.
    EXPECT_EQ((e.ca >> 8) & 0x1f, 9u);
    EXPECT_EQ((e.ca >> 7) & 1, 1u);
    EXPECT_EQ((e.ca >> 2) & 0x1f,
              static_cast<uint16_t>(StatusReg::Categories));
    EXPECT_TRUE(e.has_payload);
    EXPECT_EQ(e.payload, 12345u);
}

TEST(Isa, QueryHasNoPayload)
{
    const EncodedInstruction e = encode(makeQuery(StatusReg::InstCount));
    EXPECT_FALSE(e.has_payload);
    EXPECT_EQ((e.ca >> 7) & 1, 0u);
}

TEST(Isa, MulAddFp32MatchesFig8Opcode)
{
    const Instruction i = makeCompute(Opcode::MulAddFp32,
                                      BufferId::ExecFeature,
                                      BufferId::ExecWeight);
    const EncodedInstruction e = encode(i);
    EXPECT_EQ((e.ca >> 8) & 0x1f, 2u); // Fig. 8: Opcode=2
    EXPECT_EQ((e.ca >> 4) & 0xf, static_cast<uint16_t>(BufferId::ExecFeature));
    EXPECT_EQ(e.ca & 0xf, static_cast<uint16_t>(BufferId::ExecWeight));
}

TEST(Isa, ThirteenBitLimit)
{
    for (auto op : {Opcode::Nop, Opcode::MulAddInt4, Opcode::Ldr,
                    Opcode::Reg, Opcode::Filter, Opcode::Clr}) {
        Instruction i;
        i.op = op;
        if (op == Opcode::Ldr)
            i.has_payload = true;
        const EncodedInstruction e = encode(i);
        EXPECT_EQ(e.ca & ~0x1fffu, 0u) << opcodeName(op);
    }
}

/** Round-trip every instruction shape through encode/decode. */
class IsaRoundTrip : public ::testing::TestWithParam<Instruction>
{
};

TEST_P(IsaRoundTrip, EncodeDecodeIdentity)
{
    const Instruction &orig = GetParam();
    const Instruction back = decode(encode(orig));
    EXPECT_EQ(back.op, orig.op);
    EXPECT_EQ(back.toString(), orig.toString());
    if (orig.has_payload) {
        EXPECT_EQ(back.payload, orig.payload);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, IsaRoundTrip,
    ::testing::Values(
        makeInit(StatusReg::Threshold, 0xdeadbeefull),
        makeQuery(StatusReg::CandidateCount),
        makeLdr(BufferId::ScreenWeight, 0x123456789aull),
        makeStr(BufferId::Output, 0x40ull),
        makeMove(BufferId::ScreenPsum, BufferId::Output),
        makeCompute(Opcode::MulAddInt4, BufferId::ScreenFeature,
                    BufferId::ScreenWeight),
        makeCompute(Opcode::AddFp32, BufferId::ExecPsum,
                    BufferId::ExecWeight),
        makeCompute(Opcode::MulInt4, BufferId::ScreenFeature,
                    BufferId::ScreenWeight),
        makeFilter(BufferId::ScreenPsum),
        makeSpecial(Opcode::Softmax),
        makeSpecial(Opcode::Sigmoid),
        makeSpecial(Opcode::Barrier),
        makeSpecial(Opcode::Nop),
        makeSpecial(Opcode::Return),
        makeSpecial(Opcode::Clr)),
    [](const ::testing::TestParamInfo<Instruction> &info) {
        std::string name = opcodeName(info.param.op);
        if (info.param.op == Opcode::Reg)
            name += info.param.reg_write ? "Init" : "Query";
        for (auto &c : name)
            if (c == '_')
                c = 'x';
        return name + std::to_string(info.index);
    });

TEST(Isa, DisassembleListsEveryInstruction)
{
    Program p{makeInit(StatusReg::HiddenDim, 512),
              makeLdr(BufferId::ScreenFeature, 0x1000),
              makeSpecial(Opcode::Return)};
    const std::string text = disassemble(p);
    EXPECT_NE(text.find("INIT hidden_dim, 512"), std::string::npos);
    EXPECT_NE(text.find("LDR sfeat, 0x1000"), std::string::npos);
    EXPECT_NE(text.find("RETURN"), std::string::npos);
}

TEST(Isa, NamesAreStable)
{
    EXPECT_STREQ(opcodeName(Opcode::MulAddInt4), "MUL_ADD_INT4");
    EXPECT_STREQ(bufferName(BufferId::Index), "index");
    EXPECT_STREQ(statusRegName(StatusReg::TileRows), "tile_rows");
}

TEST(IsaDeathTest, MalformedCaWordPanics)
{
    EncodedInstruction e;
    e.ca = 0x2000; // beyond 13 bits
    EXPECT_DEATH((void)decode(e), "malformed");
}

/** Builds a raw 13-bit C/A word (opcode in bits 12..8, operand 7..0). */
EncodedInstruction
rawWord(uint16_t opcode, uint16_t operand, bool payload = false)
{
    EncodedInstruction e;
    e.ca = static_cast<uint16_t>((opcode << 8) | operand);
    e.has_payload = payload;
    return e;
}

TEST(IsaDeathTest, UnknownOpcodesPanic)
{
    // Opcodes 17..31 are unassigned; every one must be rejected.
    for (uint16_t op = 17; op < 32; ++op)
        EXPECT_DEATH((void)decode(rawWord(op, 0)), "malformed") << op;
}

TEST(IsaDeathTest, RegisterIdOutOfRangePanics)
{
    // REG with reg ids NumRegs..31 (valid 5-bit field, no such register).
    for (uint16_t reg = static_cast<uint16_t>(StatusReg::NumRegs); reg < 32;
         ++reg) {
        const auto operand = static_cast<uint16_t>((1u << 7) | (reg << 2));
        EXPECT_DEATH((void)decode(rawWord(9, operand, true)), "malformed")
            << reg;
    }
}

TEST(IsaDeathTest, StrayRegOperandBitsPanic)
{
    // Bits 1..0 of a REG word are reserved and must be zero.
    const auto operand = static_cast<uint16_t>(
        (static_cast<uint16_t>(StatusReg::Categories) << 2) | 0x1);
    EXPECT_DEATH((void)decode(rawWord(9, operand)), "malformed");
}

TEST(IsaDeathTest, BufferIdOutOfRangePanics)
{
    // Only 8 buffers exist; the 4-bit fields must stay below 8.
    EXPECT_DEATH((void)decode(rawWord(7, 0x90, true)), "malformed");  // LDR
    EXPECT_DEATH((void)decode(rawWord(10, 0x0f)), "malformed");  // MOVE buf1
    EXPECT_DEATH((void)decode(rawWord(10, 0xf0)), "malformed");  // MOVE buf0
    EXPECT_DEATH((void)decode(rawWord(1, 0x8f, false)), "malformed");
}

TEST(IsaDeathTest, StrayLoadStoreOperandBitsPanic)
{
    // LDR/STR use only the high operand nibble; low nibble is reserved.
    EXPECT_DEATH((void)decode(rawWord(7, 0x11, true)), "malformed");
    EXPECT_DEATH((void)decode(rawWord(8, 0x63, true)), "malformed");
}

TEST(IsaDeathTest, SpecialsWithOperandBitsPanic)
{
    // NOP/SOFTMAX/SIGMOID/BARRIER/RETURN/CLR carry no operand bits.
    for (uint16_t op : {0, 12, 13, 14, 15, 16})
        EXPECT_DEATH((void)decode(rawWord(op, 0x01)), "malformed") << op;
}

TEST(IsaDeathTest, PayloadPresenceMismatchPanics)
{
    // A LDR without its DQ address burst is undeliverable...
    EXPECT_DEATH((void)decode(rawWord(7, 0x10, false)), "malformed");
    // ...as is a REG QUERY or a BARRIER towing an unexpected payload.
    const auto query = static_cast<uint16_t>(
        static_cast<uint16_t>(StatusReg::Status) << 2);
    EXPECT_DEATH((void)decode(rawWord(9, query, true)), "malformed");
    EXPECT_DEATH((void)decode(rawWord(14, 0, true)), "malformed");
}

TEST(IsaDeathTest, EncodeRejectsInconsistentPayloadFlag)
{
    Instruction ldr = makeLdr(BufferId::ScreenWeight, 0x80);
    ldr.has_payload = false;
    EXPECT_DEATH((void)encode(ldr), "payload");
    Instruction nop = makeSpecial(Opcode::Nop);
    nop.has_payload = true;
    EXPECT_DEATH((void)encode(nop), "payload");
}

} // namespace
} // namespace enmc::arch

namespace enmc::arch {
namespace {

/** Fuzz: random valid instructions must round-trip for 10k draws. */
TEST(IsaFuzz, RandomInstructionsRoundTrip)
{
    Rng rng(2026);
    const Opcode ops[] = {Opcode::Nop, Opcode::MulAddInt4,
                          Opcode::MulAddFp32, Opcode::AddInt4,
                          Opcode::MulInt4, Opcode::AddFp32,
                          Opcode::MulFp32, Opcode::Ldr, Opcode::Str,
                          Opcode::Reg, Opcode::Move, Opcode::Filter,
                          Opcode::Softmax, Opcode::Sigmoid,
                          Opcode::Barrier, Opcode::Return, Opcode::Clr};
    for (int i = 0; i < 10000; ++i) {
        Instruction inst;
        inst.op = ops[rng.uniformInt(0, std::size(ops) - 1)];
        inst.buf0 = static_cast<BufferId>(rng.uniformInt(0, 7));
        inst.buf1 = static_cast<BufferId>(rng.uniformInt(0, 7));
        inst.reg = static_cast<StatusReg>(rng.uniformInt(
            0, static_cast<int>(StatusReg::NumRegs) - 1));
        inst.reg_write = rng.uniformInt(0, 1) != 0;
        if (inst.op == Opcode::Ldr || inst.op == Opcode::Str ||
            (inst.op == Opcode::Reg && inst.reg_write)) {
            inst.has_payload = true;
            inst.payload = rng();
        }
        const Instruction back = decode(encode(inst));
        ASSERT_EQ(back.op, inst.op) << i;
        ASSERT_EQ(back.toString(), inst.toString()) << i;
        if (inst.has_payload) {
            ASSERT_EQ(back.payload, inst.payload) << i;
        }
    }
}

/** Every field of a decoded instruction must survive the round trip. */
void
expectRoundTrips(const Instruction &inst)
{
    const EncodedInstruction enc = encode(inst);
    ASSERT_EQ(enc.ca & ~0x1fffu, 0u) << inst.toString();
    const Instruction back = decode(enc);
    ASSERT_EQ(back.op, inst.op) << inst.toString();
    ASSERT_EQ(back.buf0, inst.buf0) << inst.toString();
    ASSERT_EQ(back.reg_write, inst.reg_write) << inst.toString();
    ASSERT_EQ(back.has_payload, inst.has_payload) << inst.toString();
    if (inst.has_payload)
        ASSERT_EQ(back.payload, inst.payload) << inst.toString();
    // Two-buffer shapes also preserve the second operand.
    switch (inst.op) {
      case Opcode::Move:
      case Opcode::MulAddInt4:
      case Opcode::MulAddFp32:
      case Opcode::AddInt4:
      case Opcode::MulInt4:
      case Opcode::AddFp32:
      case Opcode::MulFp32:
        ASSERT_EQ(back.buf1, inst.buf1) << inst.toString();
        break;
      case Opcode::Reg:
        ASSERT_EQ(back.reg, inst.reg) << inst.toString();
        break;
      default:
        break;
    }
}

/**
 * Property test over the ENTIRE valid instruction space: every reachable
 * (opcode, operand) combination round-trips encode -> decode exactly,
 * with seeded random 64-bit DQ payloads where the shape tunnels one.
 */
TEST(IsaProperty, ExhaustiveInstructionSpaceRoundTrips)
{
    Rng rng(20260806);
    size_t count = 0;

    for (auto op : {Opcode::Move, Opcode::MulAddInt4, Opcode::MulAddFp32,
                    Opcode::AddInt4, Opcode::MulInt4, Opcode::AddFp32,
                    Opcode::MulFp32}) {
        for (int a = 0; a < 8; ++a)
            for (int b = 0; b < 8; ++b) {
                expectRoundTrips(makeCompute(op, static_cast<BufferId>(a),
                                             static_cast<BufferId>(b)));
                ++count;
            }
    }
    for (int a = 0; a < 8; ++a) {
        expectRoundTrips(makeLdr(static_cast<BufferId>(a), rng()));
        expectRoundTrips(makeStr(static_cast<BufferId>(a), rng()));
        expectRoundTrips(makeFilter(static_cast<BufferId>(a)));
        count += 3;
    }
    for (int r = 0; r < static_cast<int>(StatusReg::NumRegs); ++r) {
        expectRoundTrips(makeInit(static_cast<StatusReg>(r), rng()));
        expectRoundTrips(makeQuery(static_cast<StatusReg>(r)));
        count += 2;
    }
    for (auto op : {Opcode::Nop, Opcode::Softmax, Opcode::Sigmoid,
                    Opcode::Barrier, Opcode::Return, Opcode::Clr}) {
        expectRoundTrips(makeSpecial(op));
        ++count;
    }
    // 7*64 compute + 3*8 buffer ops + 2*15 registers + 6 specials.
    EXPECT_EQ(count, 7u * 64u + 24u + 30u + 6u);
}

/** The DQ payload field must tunnel all 64 bits bit-exactly. */
TEST(IsaProperty, PayloadTunnelsFullDqWidth)
{
    Rng rng(7);
    std::vector<uint64_t> payloads{0ull, 1ull, ~0ull, 1ull << 63,
                                   0x5555555555555555ull};
    for (int i = 0; i < 64; ++i)
        payloads.push_back(1ull << i);
    for (int i = 0; i < 1000; ++i)
        payloads.push_back(rng());
    for (uint64_t p : payloads) {
        EXPECT_EQ(decode(encode(makeLdr(BufferId::ExecWeight, p))).payload,
                  p);
        EXPECT_EQ(decode(encode(makeInit(StatusReg::Threshold, p))).payload,
                  p);
    }
}

} // namespace
} // namespace enmc::arch
