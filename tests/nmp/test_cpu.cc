/**
 * @file
 * Tests for the CPU roofline model.
 */

#include <gtest/gtest.h>

#include "nmp/cpu.h"

namespace enmc::nmp {
namespace {

TEST(CpuModel, PeaksMatchXeon8280)
{
    CpuConfig cfg;
    EXPECT_NEAR(cfg.peakFlops(), 2.7e9 * 28 * 64, 1e9);
    EXPECT_NEAR(cfg.achievableBandwidth(), 128e9 * 0.75, 1e6);
}

TEST(CpuModel, MemoryBoundCost)
{
    CpuConfig cfg;
    screening::Cost c;
    c.bytes_read = 96'000'000; // 1 ms at 96 GB/s
    c.flops = 1;               // negligible
    EXPECT_NEAR(cpuTime(cfg, c), 1e-3, 1e-6);
}

TEST(CpuModel, ComputeBoundCost)
{
    CpuConfig cfg;
    screening::Cost c;
    c.bytes_read = 1;
    c.flops = static_cast<uint64_t>(cfg.peakFlops() / 1000); // 1 ms
    EXPECT_NEAR(cpuTime(cfg, c), 1e-3, 1e-5);
}

TEST(CpuModel, FullClassificationIsBandwidthBound)
{
    CpuConfig cfg;
    const double t = cpuFullClassificationTime(cfg, 670091, 512, 1);
    const double bw_bound =
        670091.0 * 512 * 4 / cfg.achievableBandwidth();
    EXPECT_NEAR(t, bw_bound, bw_bound * 0.01);
}

TEST(CpuModel, ScreeningMuchFasterThanFull)
{
    CpuConfig cfg;
    const double full = cpuFullClassificationTime(cfg, 670091, 512, 1);
    const double screened = cpuScreeningTime(
        cfg, 670091, 512, 128, 17700, 1, tensor::QuantBits::Int4);
    EXPECT_GT(full / screened, 5.0);
    EXPECT_LT(full / screened, 40.0);
}

TEST(CpuModel, ScreeningSpeedupMatchesPaperForXmlcnn)
{
    // Fig. 11(d): ~17.4x for XMLCNN-670K at its candidate budget.
    CpuConfig cfg;
    const double full = cpuFullClassificationTime(cfg, 670091, 512, 1);
    const double screened = cpuScreeningTime(
        cfg, 670091, 512, 128, 17700, 1, tensor::QuantBits::Int4);
    EXPECT_NEAR(full / screened, 17.4, 4.0);
}

TEST(CpuModel, BatchAmortizesWeightTraffic)
{
    CpuConfig cfg;
    const double b1 = cpuFullClassificationTime(cfg, 100000, 512, 1);
    const double b4 = cpuFullClassificationTime(cfg, 100000, 512, 4);
    // Weights stream once; batch-4 is less than 4x batch-1.
    EXPECT_LT(b4, 2.0 * b1);
}

TEST(CpuModel, Fp32ScreeningSlowerThanInt4)
{
    CpuConfig cfg;
    const double q4 = cpuScreeningTime(cfg, 500000, 512, 128, 1000, 1,
                                       tensor::QuantBits::Int4);
    const double f32 = cpuScreeningTime(cfg, 500000, 512, 128, 1000, 1,
                                        tensor::QuantBits::Fp32);
    EXPECT_GT(f32, q4 * 2.0);
}

} // namespace
} // namespace enmc::nmp
