/**
 * @file
 * Tests for the baseline NMP engine models.
 */

#include <gtest/gtest.h>

#include "nmp/engine.h"

namespace enmc::nmp {
namespace {

dram::Organization
rankOrg()
{
    return dram::Organization::paperTable3().singleRankView();
}

arch::RankTask
task(uint64_t l = 4096, uint64_t d = 512, uint64_t k = 128,
     uint64_t batch = 1, uint64_t cands = 32)
{
    arch::RankTask t;
    t.categories = l;
    t.hidden = d;
    t.reduced = k;
    t.batch = batch;
    t.expected_candidates = cands;
    t.class_weight_base = 1ull << 24;
    t.feature_base = 1ull << 26;
    t.output_base = 1ull << 27;
    return t;
}

NmpEngine
engine(EngineConfig cfg)
{
    return NmpEngine(cfg, rankOrg(), dram::Timing::ddr4_2400());
}

TEST(EngineConfig, Table4Presets)
{
    EXPECT_EQ(EngineConfig::nda().fp32_macs, 16u);
    EXPECT_EQ(EngineConfig::nda().buffer_bytes, 1024u);
    EXPECT_EQ(EngineConfig::chameleon().fp32_macs, 16u);
    EXPECT_EQ(EngineConfig::tensorDimm().fp32_macs, 16u);
    EXPECT_EQ(EngineConfig::tensorDimm().buffer_bytes, 512u);
    EXPECT_EQ(EngineConfig::tensorDimm().queues, 3u);
    EXPECT_EQ(EngineConfig::tensorDimmLarge().fp32_macs, 64u);
}

TEST(EngineConfig, GemvEfficiencyModels)
{
    EXPECT_DOUBLE_EQ(EngineConfig::nda().gemvEfficiency(1), 0.5);
    EXPECT_DOUBLE_EQ(EngineConfig::chameleon().gemvEfficiency(1), 0.25);
    EXPECT_DOUBLE_EQ(EngineConfig::chameleon().gemvEfficiency(4), 1.0);
    EXPECT_DOUBLE_EQ(EngineConfig::tensorDimm().gemvEfficiency(1), 1.0);
}

TEST(NmpEngine, RunCompletesWithTraffic)
{
    NmpEngine e = engine(EngineConfig::tensorDimm());
    const auto r = e.run(task());
    EXPECT_GT(r.cycles, 0u);
    // FP32 screening weights: l * k * 4 plus the psum spill round trip.
    EXPECT_GE(r.screen_bytes, 4096u * 128u * 4u);
    EXPECT_GE(r.screen_bytes, 4096u * 128u * 4u + 2u * 4096u * 4u);
    EXPECT_EQ(r.candidates, 32u);
}

TEST(NmpEngine, Fp32ScreeningCostsMoreThanEnmcInt4Traffic)
{
    NmpEngine e = engine(EngineConfig::tensorDimm());
    const auto r = e.run(task());
    const uint64_t enmc_screen_bytes = 4096u * 128u / 2; // INT4
    EXPECT_GT(r.screen_bytes, 8 * enmc_screen_bytes);
}

TEST(NmpEngine, ChameleonSlowerThanTensorDimmAtBatch1)
{
    const auto rc = engine(EngineConfig::chameleon()).run(task());
    const auto rt = engine(EngineConfig::tensorDimm()).run(task());
    EXPECT_GT(rc.cycles, rt.cycles);
}

TEST(NmpEngine, ChameleonCatchesUpAtBatch4)
{
    const auto b1 = engine(EngineConfig::chameleon()).run(task(4096, 512, 128, 1));
    const auto b4 = engine(EngineConfig::chameleon()).run(task(4096, 512, 128, 4));
    // 4x the work in less than 4x-of-batch1 cycles: the systolic array
    // fills up.
    EXPECT_LT(b4.cycles, 3 * b1.cycles);
}

TEST(NmpEngine, TensorDimmLargeFasterThanTensorDimm)
{
    // At batch 4 the VPU is compute-limited; 4x lanes help.
    const auto small = engine(EngineConfig::tensorDimm()).run(task(4096, 512, 128, 4));
    const auto large = engine(EngineConfig::tensorDimmLarge()).run(task(4096, 512, 128, 4));
    EXPECT_LE(large.cycles, small.cycles);
}

TEST(NmpEngine, RunFullMoreExpensiveThanScreened)
{
    NmpEngine e1 = engine(EngineConfig::tensorDimm());
    NmpEngine e2 = engine(EngineConfig::tensorDimm());
    const auto screened = e1.run(task());
    const auto full = e2.runFull(task());
    EXPECT_GT(full.cycles, screened.cycles);
    EXPECT_GT(full.exec_bytes, screened.screen_bytes);
}

TEST(NmpEngine, CyclesScaleWithCategories)
{
    const auto small = engine(EngineConfig::tensorDimm()).run(task(2048));
    const auto large = engine(EngineConfig::tensorDimm()).run(task(8192));
    const double ratio = static_cast<double>(large.cycles) / small.cycles;
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
}

TEST(NmpEngine, PhaseSerializationSlowerThanEnmcOverlap)
{
    // Same task, the serialized baseline engine must be slower than the
    // sum of its stream bounds would allow an overlapped design to be.
    NmpEngine e = engine(EngineConfig::tensorDimm());
    const auto r = e.run(task(8192, 512, 128, 1, 256));
    const Cycles screen_bound = r.screen_bytes / 64 * 4;
    const Cycles exec_bound = r.exec_bytes / 64 * 4;
    EXPECT_GE(r.cycles, screen_bound + exec_bound);
}

TEST(NmpEngineDeathTest, FunctionalTaskRejected)
{
    arch::RankTask t = task();
    tensor::QuantizedMatrix wq;
    t.screen_weights = &wq;
    NmpEngine e = engine(EngineConfig::tensorDimm());
    EXPECT_DEATH((void)e.run(t), "timing-only");
}

} // namespace
} // namespace enmc::nmp
