/**
 * @file
 * Shared fixture for the fault/resilience tests: a small trained
 * threshold-mode screener + classifier (the same recipe the functional
 * system tests use) plus exact full-classification reference logits.
 */

#ifndef ENMC_TESTS_FAULT_FAULT_TEST_UTIL_H
#define ENMC_TESTS_FAULT_FAULT_TEST_UTIL_H

#include <memory>
#include <vector>

#include "screening/pipeline.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::fault_test {

struct SmallModel
{
    std::unique_ptr<workloads::SyntheticModel> synthetic;
    std::unique_ptr<screening::Screener> screener;
    std::vector<tensor::Vector> h_batch;
    std::vector<tensor::Vector> exact; //!< full-classification logits

    const nn::Classifier &classifier() const
    {
        return synthetic->classifier();
    }
};

inline SmallModel
makeSmallModel(uint64_t categories = 2048, uint64_t hidden = 64,
               uint64_t batch = 4, uint64_t budget = 48)
{
    SmallModel m;
    workloads::SyntheticConfig wcfg;
    wcfg.categories = categories;
    wcfg.hidden = hidden;
    m.synthetic = std::make_unique<workloads::SyntheticModel>(wcfg);

    screening::ScreenerConfig scfg;
    scfg.categories = categories;
    scfg.hidden = hidden;
    scfg.selection = screening::SelectionMode::Threshold;
    Rng rng(3);
    m.screener = std::make_unique<screening::Screener>(scfg, rng);

    Rng data = m.synthetic->makeRng(1);
    const auto train = m.synthetic->sampleHiddenBatch(data, 160);
    screening::Trainer trainer(m.classifier(), *m.screener,
                               screening::TrainerConfig{});
    trainer.train(train, {});
    m.screener->freezeQuantized();
    const float cut = screening::tuneThreshold(*m.screener, train, budget);
    m.screener->setSelection(screening::SelectionMode::Threshold, budget,
                             cut);

    m.h_batch = m.synthetic->sampleHiddenBatch(data, batch);
    const screening::Pipeline pipe(m.classifier(), *m.screener);
    for (const auto &h : m.h_batch)
        m.exact.push_back(pipe.inferFull(h).logits);
    return m;
}

} // namespace enmc::fault_test

#endif // ENMC_TESTS_FAULT_FAULT_TEST_UTIL_H
