/**
 * @file
 * FaultConfig::fromEnv validation tests: a mistyped experiment knob must
 * abort loudly instead of silently running a different experiment. Covers
 * out-of-range probabilities, malformed / duplicate / overflowing stuck
 * rank lists, and unknown ECC scheme names — plus the good-path parses.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fault/injector.h"

namespace enmc::fault {
namespace {

/** Scoped environment variable: set on construction, unset on scope exit. */
class ScopedEnv
{
  public:
    ScopedEnv(std::string name, const std::string &value)
        : name_(std::move(name))
    {
        ::setenv(name_.c_str(), value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_.c_str()); }
    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    std::string name_;
};

TEST(FaultConfigDeathTest, BerAboveOneIsFatal)
{
    ScopedEnv e("ENMC_FAULT_BER", "1.5");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "probability");
}

TEST(FaultConfigDeathTest, NegativeBerIsFatal)
{
    ScopedEnv e("ENMC_FAULT_BER", "-1e-6");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "probability");
}

TEST(FaultConfigDeathTest, NegativeInstDropIsFatal)
{
    ScopedEnv e("ENMC_FAULT_INST_DROP", "-0.1");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "probability");
}

TEST(FaultConfigDeathTest, InstCorruptAboveOneIsFatal)
{
    ScopedEnv e("ENMC_FAULT_INST_CORRUPT", "2");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "probability");
}

TEST(FaultConfigDeathTest, NegativeStuckRankIsFatal)
{
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "-3");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "unsigned");
}

TEST(FaultConfigDeathTest, NegativeStuckRankInTailIsFatal)
{
    // strtoull would happily wrap "2,-3"'s second id to 2^64-3; the
    // parser must reject the sign explicitly.
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "2,-3");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "unsigned");
}

TEST(FaultConfigDeathTest, NonNumericStuckRankIsFatal)
{
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "2,x");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "comma-separated");
}

TEST(FaultConfigDeathTest, BadSeparatorInStuckRanksIsFatal)
{
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "2;3");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "comma-separated");
}

TEST(FaultConfigDeathTest, DuplicateStuckRankIsFatal)
{
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "1,4,1");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "twice");
}

TEST(FaultConfigDeathTest, OverflowingStuckRankIsFatal)
{
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "4294967296"); // 2^32
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "overflows");
}

TEST(FaultConfigDeathTest, HugeStuckRankIsFatal)
{
    // Larger than 2^64: strtoull saturates and sets ERANGE.
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "99999999999999999999999");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "overflows");
}

TEST(FaultConfigDeathTest, UnknownStrongSchemeIsFatal)
{
    ScopedEnv e("ENMC_FAULT_STRONG_ECC", "reed-solomon");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "word72");
}

TEST(FaultConfigDeathTest, UnknownWeakSchemeIsFatal)
{
    ScopedEnv e("ENMC_FAULT_WEAK_ECC", "block2k");
    EXPECT_DEATH((void)FaultConfig::fromEnv(), "word72");
}

TEST(FaultConfig, BoundaryProbabilitiesAreAccepted)
{
    ScopedEnv a("ENMC_FAULT_BER", "1");
    ScopedEnv b("ENMC_FAULT_INST_DROP", "0");
    const FaultConfig cfg = FaultConfig::fromEnv();
    EXPECT_DOUBLE_EQ(cfg.data_ber, 1.0);
    EXPECT_DOUBLE_EQ(cfg.inst_drop_p, 0.0);
}

TEST(FaultConfig, SchemeAndOverheadKnobsParse)
{
    ScopedEnv a("ENMC_FAULT_STRONG_ECC", "block512");
    ScopedEnv b("ENMC_FAULT_WEAK_ECC", "none");
    ScopedEnv c("ENMC_FAULT_ECC_OVERHEAD", "1");
    const FaultConfig cfg = FaultConfig::fromEnv();
    EXPECT_EQ(cfg.strong_scheme, EccScheme::Block512B);
    EXPECT_EQ(cfg.weak_scheme, EccScheme::None);
    EXPECT_TRUE(cfg.ecc_overhead);
}

TEST(FaultConfig, DefaultsKeepEveryKnobOff)
{
    const FaultConfig cfg = FaultConfig::fromEnv();
    EXPECT_FALSE(cfg.enabled);
    EXPECT_FALSE(cfg.ecc_overhead);
    EXPECT_EQ(cfg.strong_scheme, EccScheme::Word72);
    EXPECT_EQ(cfg.weak_scheme, EccScheme::Word72);
    EXPECT_TRUE(cfg.stuck_ranks.empty());
}

TEST(FaultConfig, MaxStuckRankIdParses)
{
    ScopedEnv e("ENMC_FAULT_STUCK_RANKS", "4294967295"); // 2^32 - 1
    const FaultConfig cfg = FaultConfig::fromEnv();
    ASSERT_EQ(cfg.stuck_ranks.size(), 1u);
    EXPECT_EQ(cfg.stuck_ranks[0], 4294967295u);
}

} // namespace
} // namespace enmc::fault
