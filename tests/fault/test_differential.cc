/**
 * @file
 * Differential harness for the fault + ECC layer: the fault-enabled
 * system is compared against the pristine one on the same model, batch
 * and seed.
 *
 * Invariants proven here:
 *  - injection rate 0 (and faults disabled outright) are bit-identical
 *    to the pristine run — the layer is free when off;
 *  - with ECC on, P@1 stays within a seeded tolerance of fault-free and
 *    every single-bit word error is corrected;
 *  - the accounting invariant injected == corrected + detected + escaped
 *    holds end-to-end through the full system at every swept rate;
 *  - instruction-delivery faults cost cycles but never answers;
 *  - results and counters are independent of the worker-thread count.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault_test_util.h"
#include "runtime/system.h"
#include "screening/metrics.h"

namespace enmc::runtime {
namespace {

using fault_test::SmallModel;
using fault_test::makeSmallModel;

class FaultDifferential : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        model_ = new SmallModel(makeSmallModel());
        SystemConfig cfg;
        clean_ = new EnmcSystem::FunctionalResult(
            EnmcSystem(cfg).runFunctional(model_->classifier(),
                                          *model_->screener,
                                          model_->h_batch, 4));
    }

    static void TearDownTestSuite()
    {
        delete clean_;
        delete model_;
        clean_ = nullptr;
        model_ = nullptr;
    }

    static EnmcSystem::FunctionalResult runFaulty(double ber, bool ecc,
                                                  uint64_t seed = 1)
    {
        SystemConfig cfg;
        cfg.fault.enabled = true;
        cfg.fault.seed = seed;
        cfg.fault.data_ber = ber;
        cfg.fault.ecc = ecc;
        cfg.resilient = true;
        return EnmcSystem(cfg).runFunctional(model_->classifier(),
                                             *model_->screener,
                                             model_->h_batch, 4);
    }

    static void expectBitIdentical(
        const EnmcSystem::FunctionalResult &out)
    {
        ASSERT_EQ(out.logits.size(), clean_->logits.size());
        for (size_t i = 0; i < clean_->logits.size(); ++i)
            EXPECT_EQ(out.logits[i], clean_->logits[i]) << "item " << i;
        EXPECT_EQ(out.candidates, clean_->candidates);
        for (size_t i = 0; i < clean_->probabilities.size(); ++i)
            EXPECT_EQ(out.probabilities[i], clean_->probabilities[i]);
    }

    static SmallModel *model_;
    static EnmcSystem::FunctionalResult *clean_;
};

SmallModel *FaultDifferential::model_ = nullptr;
EnmcSystem::FunctionalResult *FaultDifferential::clean_ = nullptr;

TEST_F(FaultDifferential, RateZeroIsBitIdentical)
{
    // Injection machinery armed but rate 0: every output must match the
    // pristine run bit-for-bit and no counter may move.
    const auto out = runFaulty(/*ber=*/0.0, /*ecc=*/true);
    expectBitIdentical(out);
    EXPECT_EQ(out.rank_cycles, clean_->rank_cycles);
    EXPECT_EQ(out.faults.injected_words, 0u);
    EXPECT_EQ(out.faults.injected_bits, 0u);
    EXPECT_EQ(out.uncorrectable_words, 0u);
    EXPECT_EQ(out.degraded_candidates, 0u);
}

TEST_F(FaultDifferential, EccHoldsPrecisionAtRealisticRates)
{
    const double clean_p1 =
        screening::precisionAt1(model_->exact, clean_->logits);
    const double clean_recall = screening::candidateRecallAtK(
        model_->exact, clean_->candidates, 10);

    for (const double ber : {1e-6, 1e-4}) {
        const auto out = runFaulty(ber, /*ecc=*/true);
        const double p1 =
            screening::precisionAt1(model_->exact, out.logits);
        const double recall = screening::candidateRecallAtK(
            model_->exact, out.candidates, 10);
        // Seeded tolerance: SECDED + retry recovers the fault-free
        // operating point at DRAM-realistic error rates.
        EXPECT_GE(p1, clean_p1 - 1e-12) << "ber " << ber;
        EXPECT_GE(recall, clean_recall - 1e-12) << "ber " << ber;
        EXPECT_TRUE(out.faults.balanced());
    }
}

TEST_F(FaultDifferential, EverySingleBitWordErrorIsCorrected)
{
    // System-level restatement of the SECDED guarantee: a word that took
    // exactly one flip can never be detected-uncorrectable or escape, so
    // corrections must at least cover the single-flip words.
    const auto out = runFaulty(/*ber=*/1e-4, /*ecc=*/true);
    EXPECT_GT(out.faults.single_bit_words, 0u)
        << "rate too low to exercise the codec at this model size";
    EXPECT_GE(out.faults.corrected, out.faults.single_bit_words);
    EXPECT_TRUE(out.faults.balanced());
}

TEST_F(FaultDifferential, CounterInvariantHoldsThroughTheFullSystem)
{
    for (const double ber : {1e-5, 1e-4, 1e-3}) {
        for (const bool ecc : {true, false}) {
            const auto out = runFaulty(ber, ecc);
            EXPECT_TRUE(out.faults.balanced())
                << "ber " << ber << " ecc " << ecc << ": "
                << out.faults.injected_words << " != "
                << out.faults.corrected << " + " << out.faults.detected
                << " + " << out.faults.escaped;
            if (!ecc) {
                EXPECT_EQ(out.faults.corrected, 0u);
                EXPECT_EQ(out.faults.detected, 0u);
            }
        }
    }
}

TEST_F(FaultDifferential, WithoutEccFaultsEscapeSilently)
{
    const auto out = runFaulty(/*ber=*/1e-3, /*ecc=*/false);
    EXPECT_GT(out.faults.escaped, 0u);
    EXPECT_EQ(out.faults.escaped, out.faults.injected_words);
    EXPECT_EQ(out.uncorrectable_words, 0u)
        << "without ECC nothing is ever *detected*";
}

TEST_F(FaultDifferential, InstructionFaultsCostCyclesNotAnswers)
{
    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 1;
    cfg.fault.inst_drop_p = 0.1;
    cfg.fault.inst_corrupt_p = 0.05;
    const auto out = EnmcSystem(cfg).runFunctional(model_->classifier(),
                                                   *model_->screener,
                                                   model_->h_batch, 4);

    // Failed deliveries are repeated by the host, so the data path (and
    // therefore every logit and candidate) is untouched...
    expectBitIdentical(out);
    // ...but the repeats are visible in the counters and the clock.
    EXPECT_GT(out.faults.inst_dropped + out.faults.inst_corrupted, 0u);
    EXPECT_GT(out.rank_cycles, clean_->rank_cycles);
}

TEST_F(FaultDifferential, ResultsAreIndependentOfWorkerThreadCount)
{
    auto run = [&](uint64_t threads) {
        SystemConfig cfg;
        cfg.sim_threads = threads;
        cfg.fault.enabled = true;
        cfg.fault.seed = 7;
        cfg.fault.data_ber = 1e-3;
        cfg.resilient = true;
        return EnmcSystem(cfg).runFunctional(model_->classifier(),
                                             *model_->screener,
                                             model_->h_batch, 4);
    };
    const auto serial = run(1);
    const auto pooled = run(4);

    for (size_t i = 0; i < serial.logits.size(); ++i)
        EXPECT_EQ(pooled.logits[i], serial.logits[i]) << "item " << i;
    EXPECT_EQ(pooled.candidates, serial.candidates);
    EXPECT_EQ(pooled.rank_cycles, serial.rank_cycles);
    EXPECT_EQ(pooled.faults.injected_words, serial.faults.injected_words);
    EXPECT_EQ(pooled.faults.injected_bits, serial.faults.injected_bits);
    EXPECT_EQ(pooled.faults.corrected, serial.faults.corrected);
    EXPECT_EQ(pooled.faults.detected, serial.faults.detected);
    EXPECT_EQ(pooled.faults.escaped, serial.faults.escaped);
    EXPECT_EQ(pooled.degraded_candidates, serial.degraded_candidates);
}

} // namespace
} // namespace enmc::runtime
