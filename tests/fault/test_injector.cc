/**
 * @file
 * FaultInjector tests: determinism of the (seed, stream, index) contract,
 * per-word ECC classification, erasure semantics of buffer reads,
 * instruction fates, stuck-rank config, env parsing, and the statistical
 * sanity of the flip sampler.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "fault/injector.h"

namespace enmc::fault {
namespace {

FaultConfig
faultCfg(double ber, bool ecc = true, uint64_t seed = 1)
{
    FaultConfig cfg;
    cfg.enabled = true;
    cfg.seed = seed;
    cfg.data_ber = ber;
    cfg.ecc = ecc;
    return cfg;
}

TEST(FaultInjector, DisabledAndRateZeroAreNoops)
{
    FaultConfig off;
    off.data_ber = 0.5; // ignored: master switch off
    FaultInjector disabled(off);
    FaultConfig zero = faultCfg(0.0);
    FaultInjector rate_zero(zero);

    for (uint64_t i = 0; i < 200; ++i) {
        bool unc = true;
        EXPECT_EQ(disabled.readWord(0xabcdull * i, i, &unc), 0xabcdull * i);
        EXPECT_FALSE(unc);
        EXPECT_EQ(rate_zero.readWord(0xabcdull * i, i, &unc),
                  0xabcdull * i);
        EXPECT_FALSE(unc);
    }
    EXPECT_EQ(disabled.counters().injected_words, 0u);
    EXPECT_EQ(rate_zero.counters().injected_words, 0u);
}

TEST(FaultInjector, OutcomesArePureInSeedStreamIndex)
{
    const FaultConfig cfg = faultCfg(0.01);
    FaultInjector a(cfg, /*stream=*/3);
    FaultInjector b(cfg, /*stream=*/3);

    // b consumes the same indices in reverse order: per-index outcomes
    // must match a's exactly (order independence).
    std::vector<uint64_t> fwd(512), rev(512);
    for (uint64_t i = 0; i < 512; ++i) {
        bool unc = false;
        fwd[i] = a.readWord(0x1111111111111111ull, i, &unc);
    }
    for (uint64_t i = 512; i-- > 0;) {
        bool unc = false;
        rev[i] = b.readWord(0x1111111111111111ull, i, &unc);
    }
    EXPECT_EQ(fwd, rev);
    EXPECT_EQ(a.counters().injected_words, b.counters().injected_words);
    EXPECT_EQ(a.counters().injected_bits, b.counters().injected_bits);
}

TEST(FaultInjector, StreamsAndSeedsAreIndependent)
{
    FaultInjector s0(faultCfg(0.02), 0);
    FaultInjector s1(faultCfg(0.02), 1);
    FaultInjector other_seed(faultCfg(0.02, true, 99), 0);

    uint64_t diff_stream = 0, diff_seed = 0;
    for (uint64_t i = 0; i < 2048; ++i) {
        bool unc = false;
        const uint64_t w0 = s0.readWord(0, i, &unc);
        const uint64_t w1 = s1.readWord(0, i, &unc);
        const uint64_t w2 = other_seed.readWord(0, i, &unc);
        diff_stream += w0 != w1;
        diff_seed += w0 != w2;
    }
    EXPECT_GT(diff_stream, 0u);
    EXPECT_GT(diff_seed, 0u);
}

TEST(FaultInjector, SingleBitErrorsAlwaysCorrectedWithEcc)
{
    FaultInjector inj(faultCfg(0.004));
    uint64_t singles = 0;
    FaultCounters prev;
    for (uint64_t i = 0; i < 20000; ++i) {
        bool unc = false;
        const uint64_t word = 0x0123456789abcdefull ^ i;
        const uint64_t out = inj.readWord(word, i, &unc);
        const FaultCounters &c = inj.counters();
        if (c.single_bit_words == prev.single_bit_words + 1) {
            // This word took exactly one flip: SECDED must return it
            // unchanged and count a correction.
            EXPECT_EQ(out, word) << "index " << i;
            EXPECT_FALSE(unc);
            EXPECT_EQ(c.corrected, prev.corrected + 1);
            ++singles;
        }
        prev = c;
    }
    EXPECT_GT(singles, 100u) << "rate too low to exercise the codec";
    EXPECT_TRUE(inj.counters().balanced());
}

TEST(FaultInjector, WithoutEccEveryFaultEscapes)
{
    FaultInjector inj(faultCfg(0.01, /*ecc=*/false));
    for (uint64_t i = 0; i < 5000; ++i) {
        bool unc = false;
        inj.readWord(0, i, &unc);
        EXPECT_FALSE(unc) << "no ECC -> nothing is ever detected";
    }
    const FaultCounters &c = inj.counters();
    EXPECT_GT(c.injected_words, 0u);
    EXPECT_EQ(c.corrected, 0u);
    EXPECT_EQ(c.detected, 0u);
    EXPECT_EQ(c.escaped, c.injected_words);
    EXPECT_TRUE(c.balanced());
}

TEST(FaultInjector, CounterInvariantHoldsAcrossRates)
{
    for (const double ber : {1e-4, 1e-3, 1e-2, 0.1}) {
        for (const bool ecc : {true, false}) {
            FaultInjector inj(faultCfg(ber, ecc));
            for (uint64_t i = 0; i < 3000; ++i) {
                bool unc = false;
                inj.readWord(i * 0x9e3779b97f4a7c15ull, i, &unc);
            }
            EXPECT_TRUE(inj.counters().balanced())
                << "ber " << ber << " ecc " << ecc;
        }
    }
}

TEST(FaultInjector, ReadBufferErasesDetectedWords)
{
    FaultInjector inj(faultCfg(0.02));
    std::vector<uint8_t> buf(4096, 0xff);
    const uint64_t unc = inj.readBuffer(buf, 0);
    EXPECT_EQ(unc, inj.counters().detected);
    EXPECT_GT(inj.counters().injected_words, 0u);
    // Every detected word was zeroed: count 8-byte words that are all 0.
    uint64_t zero_words = 0;
    for (size_t off = 0; off < buf.size(); off += 8) {
        uint64_t w = 0;
        std::memcpy(&w, buf.data() + off, 8);
        zero_words += w == 0;
    }
    EXPECT_GE(zero_words, unc);
    EXPECT_TRUE(inj.counters().balanced());
}

TEST(FaultInjector, ReadBufferHandlesUnalignedTail)
{
    FaultInjector a(faultCfg(0.05));
    FaultInjector b(faultCfg(0.05));
    std::vector<uint8_t> buf_a(13, 0x5a), buf_b(13, 0x5a);
    a.readBuffer(buf_a, 7);
    b.readBuffer(buf_b, 7);
    EXPECT_EQ(buf_a, buf_b) << "tail handling must be deterministic";
    EXPECT_TRUE(a.counters().balanced());
}

TEST(FaultInjector, InstructionFatesFollowConfiguredRates)
{
    FaultConfig drop = faultCfg(0.0);
    drop.inst_drop_p = 1.0;
    drop.inst_corrupt_p = 1.0; // drop is checked first
    FaultInjector always_drop(drop);
    EXPECT_EQ(always_drop.instructionFate(0),
              FaultInjector::InstFate::Drop);
    EXPECT_EQ(always_drop.counters().inst_dropped, 1u);
    EXPECT_EQ(always_drop.counters().inst_corrupted, 0u);

    FaultConfig corrupt = faultCfg(0.0);
    corrupt.inst_corrupt_p = 1.0;
    FaultInjector always_corrupt(corrupt);
    EXPECT_EQ(always_corrupt.instructionFate(0),
              FaultInjector::InstFate::Corrupt);
    EXPECT_EQ(always_corrupt.counters().inst_corrupted, 1u);

    FaultInjector never(faultCfg(0.0));
    for (uint64_t a = 0; a < 100; ++a)
        EXPECT_EQ(never.instructionFate(a),
                  FaultInjector::InstFate::Deliver);
    EXPECT_EQ(never.counters().inst_dropped, 0u);

    // Fresh samples per attempt: a 50% drop rate cannot drop forever.
    FaultConfig half = faultCfg(0.0);
    half.inst_drop_p = 0.5;
    FaultInjector coin(half);
    uint64_t delivered = 0;
    for (uint64_t a = 0; a < 200; ++a)
        delivered +=
            coin.instructionFate(a) == FaultInjector::InstFate::Deliver;
    EXPECT_GT(delivered, 50u);
    EXPECT_LT(delivered, 150u);
}

TEST(FaultInjector, StuckRankLookup)
{
    FaultConfig cfg = faultCfg(0.0);
    cfg.stuck_ranks = {1, 17};
    EXPECT_TRUE(cfg.rankStuck(1));
    EXPECT_TRUE(cfg.rankStuck(17));
    EXPECT_FALSE(cfg.rankStuck(0));
    EXPECT_FALSE(cfg.rankStuck(16));
}

TEST(FaultInjector, ConfigFromEnvironment)
{
    ::setenv("ENMC_FAULT", "1", 1);
    ::setenv("ENMC_FAULT_SEED", "77", 1);
    ::setenv("ENMC_FAULT_BER", "1e-6", 1);
    ::setenv("ENMC_FAULT_INST_DROP", "0.25", 1);
    ::setenv("ENMC_FAULT_ECC", "0", 1);
    ::setenv("ENMC_FAULT_STUCK_RANKS", "2,5,11", 1);
    const FaultConfig cfg = FaultConfig::fromEnv();
    ::unsetenv("ENMC_FAULT");
    ::unsetenv("ENMC_FAULT_SEED");
    ::unsetenv("ENMC_FAULT_BER");
    ::unsetenv("ENMC_FAULT_INST_DROP");
    ::unsetenv("ENMC_FAULT_ECC");
    ::unsetenv("ENMC_FAULT_STUCK_RANKS");

    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.seed, 77u);
    EXPECT_DOUBLE_EQ(cfg.data_ber, 1e-6);
    EXPECT_DOUBLE_EQ(cfg.inst_drop_p, 0.25);
    EXPECT_FALSE(cfg.ecc);
    EXPECT_EQ(cfg.stuck_ranks, (std::vector<uint32_t>{2, 5, 11}));

    const FaultConfig off = FaultConfig::fromEnv();
    EXPECT_FALSE(off.enabled);
    EXPECT_TRUE(off.ecc);
}

TEST(FaultInjector, FlipRateMatchesConfiguredBer)
{
    // 10k words x 72 bits at BER 0.01: expect ~7200 flips; the draw is
    // deterministic, so a generous band is a regression check, not flake.
    FaultInjector inj(faultCfg(0.01));
    for (uint64_t i = 0; i < 10000; ++i) {
        bool unc = false;
        inj.readWord(0, i, &unc);
    }
    const double rate = static_cast<double>(inj.counters().injected_bits) /
                        (10000.0 * 72.0);
    EXPECT_NEAR(rate, 0.01, 0.002);
}

TEST(FaultInjector, ClassifyBurstIsStatOnlyAndSane)
{
    FaultInjector inj(faultCfg(0.01));
    const auto out = inj.classifyBurst(5000, 0);
    EXPECT_EQ(inj.counters().injected_words, 0u)
        << "classifyBurst must not touch the data-path counters";
    EXPECT_GT(out.corrected, 0u);
    EXPECT_LE(out.corrected + out.detected + out.escaped, 5000u);

    // Deterministic in (seed, index_base).
    const auto again = inj.classifyBurst(5000, 0);
    EXPECT_EQ(out.corrected, again.corrected);
    EXPECT_EQ(out.detected, again.detected);
    EXPECT_EQ(out.escaped, again.escaped);
}

} // namespace
} // namespace enmc::fault
