/**
 * @file
 * ResilientBackend tests: registry wiring, bit-identity with faults off,
 * retry-with-backoff accounting, stuck-rank blacklisting and the
 * degradation-disabled panic path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault_test_util.h"
#include "runtime/backend.h"
#include "runtime/resilience.h"
#include "runtime/system.h"
#include "screening/metrics.h"

namespace enmc::runtime {
namespace {

using fault_test::SmallModel;
using fault_test::makeSmallModel;

TEST(ResilientBackend, RegisteredAndAdvertisesFunctional)
{
    ASSERT_TRUE(BackendRegistry::instance().contains("enmc-resilient"));
    const auto names = backendNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "enmc-resilient"),
              names.end());

    const auto backend = createBackend("enmc-resilient");
    EXPECT_EQ(backend->name(), "enmc-resilient");
    EXPECT_TRUE(backend->capabilities().functional);
}

TEST(ResilientBackend, FaultsOffMatchesPlainBackendBitExactly)
{
    const SmallModel m = makeSmallModel();

    SystemConfig plain_cfg;
    const EnmcSystem plain(plain_cfg);
    const auto base =
        plain.runFunctional(m.classifier(), *m.screener, m.h_batch, 4);

    SystemConfig res_cfg;
    res_cfg.resilient = true; // faults stay off: policy must be inert
    const EnmcSystem resilient(res_cfg);
    const auto out =
        resilient.runFunctional(m.classifier(), *m.screener, m.h_batch, 4);

    ASSERT_EQ(out.logits.size(), base.logits.size());
    for (size_t i = 0; i < base.logits.size(); ++i)
        EXPECT_EQ(out.logits[i], base.logits[i]) << "item " << i;
    EXPECT_EQ(out.candidates, base.candidates);
    EXPECT_EQ(out.rank_cycles, base.rank_cycles);
    EXPECT_EQ(out.faults.injected_words, 0u);
}

TEST(ResilientBackend, RetryAddsBackoffCyclesAndClearsErrors)
{
    const SmallModel m = makeSmallModel();

    SystemConfig clean_cfg;
    const auto clean = EnmcSystem(clean_cfg).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);

    // At BER 1e-3 with ECC some words come back detected-uncorrectable;
    // the retry path re-reads with fresh fault samples and pays backoff.
    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 1;
    cfg.fault.data_ber = 1e-3;
    cfg.resilient = true;
    const auto out = EnmcSystem(cfg).runFunctional(m.classifier(),
                                                   *m.screener, m.h_batch,
                                                   4);

    EXPECT_GT(out.faults.detected, 0u)
        << "operating point no longer exercises the retry path";
    EXPECT_GT(out.rank_cycles, clean.rank_cycles)
        << "retries must show up as added latency";
    EXPECT_TRUE(out.faults.balanced());

    // Accuracy survives: corrected + retried + (at worst) degraded-to-
    // approximate logits keep P@1 at the fault-free value on this seed.
    const double clean_p1 =
        screening::precisionAt1(m.exact, clean.logits);
    const double fault_p1 = screening::precisionAt1(m.exact, out.logits);
    EXPECT_GE(fault_p1, clean_p1 - 0.25 - 1e-12);
}

TEST(ResilientBackend, StuckRankIsBlacklistedAndAnswersStayExact)
{
    const SmallModel m = makeSmallModel();

    SystemConfig clean_cfg;
    const auto clean = EnmcSystem(clean_cfg).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);

    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.stuck_ranks = {1}; // data_ber stays 0: only the dead rank
    const ResilientBackend backend(cfg);

    const auto healthy = backend.healthyRanks();
    EXPECT_EQ(healthy.size(), cfg.totalRanks() - 1);
    EXPECT_EQ(std::find(healthy.begin(), healthy.end(), 1u),
              healthy.end());

    // The repartitioned job avoids the stuck rank entirely, so with no
    // other fault source the logits are bit-identical to the clean run
    // (functional results are partition-invariant).
    const auto out = backend.runFunctionalJob(m.classifier(), *m.screener,
                                              m.h_batch, 4);
    for (size_t i = 0; i < clean.logits.size(); ++i)
        EXPECT_EQ(out.logits[i], clean.logits[i]) << "item " << i;
    EXPECT_EQ(out.candidates, clean.candidates);
    EXPECT_EQ(out.faults.stuck_reads, 0u)
        << "a blacklisted rank must never be read";
}

TEST(ResilientBackend, RunJobChargesBlacklistProbesAndRepartitions)
{
    JobSpec spec;
    spec.categories = 100000;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.candidates = 2000;

    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.stuck_ranks = {1};
    const ResilientBackend degraded(cfg);
    const TimingResult t_degraded = degraded.runJob(spec);

    const EnmcBackend plain{SystemConfig{}};
    const TimingResult t_all = plain.runJob(spec);

    EXPECT_EQ(t_degraded.ranks, cfg.totalRanks() - 1);
    EXPECT_GT(t_degraded.seconds, t_all.seconds)
        << "losing a rank must cost throughput";
}

TEST(ResilientBackend, DegradationDisabledPanicsOnPersistentErrors)
{
    const SmallModel m = makeSmallModel(/*categories=*/512,
                                        /*hidden=*/32,
                                        /*batch=*/1);

    // BER high enough that every attempt (original + retries) sees
    // detected-uncorrectable words; with degrade off that is fatal.
    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 1;
    cfg.fault.data_ber = 5e-3;
    cfg.resilient = true;
    cfg.resilience.max_retries = 1;
    cfg.resilience.degrade = false;
    const EnmcSystem sys(cfg);
    EXPECT_DEATH(sys.runFunctional(m.classifier(), *m.screener, m.h_batch,
                                   1),
                 "uncorrectable");
}

TEST(ResilientBackend, RetryWeakOffSkipsWeakOnlyErasures)
{
    const SmallModel m = makeSmallModel(/*categories=*/512, /*hidden=*/32,
                                        /*batch=*/1);

    // Route the strong (executor) path around detection entirely so every
    // detected-uncorrectable word is weak-class (screener tiles). With
    // retry_weak off those erasures must neither retry nor panic — the
    // exact recompute of surviving candidates already bounds their damage.
    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 1;
    cfg.fault.data_ber = 5e-3;
    cfg.fault.strong_scheme = fault::EccScheme::None;
    cfg.fault.weak_scheme = fault::EccScheme::Word72;
    cfg.resilient = true;
    cfg.resilience.retry_weak = false;
    cfg.resilience.degrade = false; // would panic if a retry were owed
    const auto out = EnmcSystem(cfg).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 1);

    EXPECT_GT(out.uncorrectable_weak_words, 0u)
        << "operating point no longer produces weak-path erasures";
    EXPECT_EQ(out.uncorrectable_strong_words, 0u);

    // Same scenario with retry_weak on: the erasures now drive retries
    // (visible as added latency), which is exactly the bandwidth the
    // differentiated policy saves.
    SystemConfig eager = cfg;
    eager.resilience.retry_weak = true;
    eager.resilience.degrade = true;
    const auto retried = EnmcSystem(eager).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 1);
    EXPECT_GT(retried.rank_cycles, out.rank_cycles)
        << "retry_weak=true must pay backoff for weak erasures";
}

TEST(ResilientBackend, DifferentiatedProtectionKeepsAccuracy)
{
    const SmallModel m = makeSmallModel();

    // Protect-everything (per-word SECDED on both classes) vs. the
    // differentiated policy (strong Word72, weak unprotected): at BER
    // 1e-3 the weak path's silent INT4 flips only perturb candidate
    // membership, so P@1 holds while the weak class stops consuming
    // redundancy and retries.
    SystemConfig all;
    all.fault.enabled = true;
    all.fault.seed = 3;
    all.fault.data_ber = 1e-3;
    all.resilient = true;
    const auto protect_all = EnmcSystem(all).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);

    SystemConfig diff = all;
    diff.fault.weak_scheme = fault::EccScheme::None;
    diff.resilience.retry_weak = false;
    const auto differentiated = EnmcSystem(diff).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);

    const double all_p1 =
        screening::precisionAt1(m.exact, protect_all.logits);
    const double diff_p1 =
        screening::precisionAt1(m.exact, differentiated.logits);
    EXPECT_GE(diff_p1, all_p1 - 0.005 - 1e-12)
        << "differentiated protection must hold P@1 within 0.5%";
    EXPECT_TRUE(differentiated.faults.classesBalanced());
    EXPECT_EQ(differentiated.faults.per_class[static_cast<size_t>(
                                                  fault::Protection::Weak)]
                  .detected,
              0u)
        << "an unprotected weak path cannot detect anything";
}

TEST(ResilientBackend, WeakGuardWidensFilterOnlyWhenUnprotected)
{
    const SmallModel m = makeSmallModel();

    const auto countCandidates = [](const auto &out) {
        size_t n = 0;
        for (const auto &c : out.candidates)
            n += c.size();
        return n;
    };

    // Unprotected weak path + BER: the fail-open guard lowers the FILTER
    // cut, so the candidate set can only grow vs. the guard disabled.
    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 1;
    cfg.fault.data_ber = 1e-3;
    cfg.fault.weak_scheme = fault::EccScheme::None;
    cfg.resilient = true;
    cfg.resilience.retry_weak = false;
    const auto guarded = EnmcSystem(cfg).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);

    SystemConfig no_guard = cfg;
    no_guard.resilience.weak_guard = 0.0;
    const auto bare = EnmcSystem(no_guard).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);
    EXPECT_GT(countCandidates(guarded), countCandidates(bare))
        << "the guard must widen the filter when the screener is "
           "unprotected under a nonzero BER";

    // With the weak path under SECDED the guard must be inert: same
    // fault stream, same candidate count whether the knob is 0 or not.
    SystemConfig protected_cfg = cfg;
    protected_cfg.fault.weak_scheme = fault::EccScheme::Word72;
    const auto prot = EnmcSystem(protected_cfg).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);
    SystemConfig protected_bare = protected_cfg;
    protected_bare.resilience.weak_guard = 0.0;
    const auto prot_bare = EnmcSystem(protected_bare).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);
    EXPECT_EQ(countCandidates(prot), countCandidates(prot_bare));
}

TEST(ResilientBackend, AllRanksBlacklistedIsFatal)
{
    SystemConfig cfg;
    cfg.fault.enabled = true;
    for (uint32_t r = 0; r < cfg.totalRanks(); ++r)
        cfg.fault.stuck_ranks.push_back(r);
    const ResilientBackend backend(cfg);
    JobSpec spec;
    spec.categories = 4096;
    spec.hidden = 64;
    spec.reduced = 16;
    spec.candidates = 64;
    EXPECT_DEATH(backend.runJob(spec), "blacklisted");
}

} // namespace
} // namespace enmc::runtime
