/**
 * @file
 * ResilientBackend tests: registry wiring, bit-identity with faults off,
 * retry-with-backoff accounting, stuck-rank blacklisting and the
 * degradation-disabled panic path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault_test_util.h"
#include "runtime/backend.h"
#include "runtime/resilience.h"
#include "runtime/system.h"
#include "screening/metrics.h"

namespace enmc::runtime {
namespace {

using fault_test::SmallModel;
using fault_test::makeSmallModel;

TEST(ResilientBackend, RegisteredAndAdvertisesFunctional)
{
    ASSERT_TRUE(BackendRegistry::instance().contains("enmc-resilient"));
    const auto names = backendNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "enmc-resilient"),
              names.end());

    const auto backend = createBackend("enmc-resilient");
    EXPECT_EQ(backend->name(), "enmc-resilient");
    EXPECT_TRUE(backend->capabilities().functional);
}

TEST(ResilientBackend, FaultsOffMatchesPlainBackendBitExactly)
{
    const SmallModel m = makeSmallModel();

    SystemConfig plain_cfg;
    const EnmcSystem plain(plain_cfg);
    const auto base =
        plain.runFunctional(m.classifier(), *m.screener, m.h_batch, 4);

    SystemConfig res_cfg;
    res_cfg.resilient = true; // faults stay off: policy must be inert
    const EnmcSystem resilient(res_cfg);
    const auto out =
        resilient.runFunctional(m.classifier(), *m.screener, m.h_batch, 4);

    ASSERT_EQ(out.logits.size(), base.logits.size());
    for (size_t i = 0; i < base.logits.size(); ++i)
        EXPECT_EQ(out.logits[i], base.logits[i]) << "item " << i;
    EXPECT_EQ(out.candidates, base.candidates);
    EXPECT_EQ(out.rank_cycles, base.rank_cycles);
    EXPECT_EQ(out.faults.injected_words, 0u);
}

TEST(ResilientBackend, RetryAddsBackoffCyclesAndClearsErrors)
{
    const SmallModel m = makeSmallModel();

    SystemConfig clean_cfg;
    const auto clean = EnmcSystem(clean_cfg).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);

    // At BER 1e-3 with ECC some words come back detected-uncorrectable;
    // the retry path re-reads with fresh fault samples and pays backoff.
    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 1;
    cfg.fault.data_ber = 1e-3;
    cfg.resilient = true;
    const auto out = EnmcSystem(cfg).runFunctional(m.classifier(),
                                                   *m.screener, m.h_batch,
                                                   4);

    EXPECT_GT(out.faults.detected, 0u)
        << "operating point no longer exercises the retry path";
    EXPECT_GT(out.rank_cycles, clean.rank_cycles)
        << "retries must show up as added latency";
    EXPECT_TRUE(out.faults.balanced());

    // Accuracy survives: corrected + retried + (at worst) degraded-to-
    // approximate logits keep P@1 at the fault-free value on this seed.
    const double clean_p1 =
        screening::precisionAt1(m.exact, clean.logits);
    const double fault_p1 = screening::precisionAt1(m.exact, out.logits);
    EXPECT_GE(fault_p1, clean_p1 - 0.25 - 1e-12);
}

TEST(ResilientBackend, StuckRankIsBlacklistedAndAnswersStayExact)
{
    const SmallModel m = makeSmallModel();

    SystemConfig clean_cfg;
    const auto clean = EnmcSystem(clean_cfg).runFunctional(
        m.classifier(), *m.screener, m.h_batch, 4);

    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.stuck_ranks = {1}; // data_ber stays 0: only the dead rank
    const ResilientBackend backend(cfg);

    const auto healthy = backend.healthyRanks();
    EXPECT_EQ(healthy.size(), cfg.totalRanks() - 1);
    EXPECT_EQ(std::find(healthy.begin(), healthy.end(), 1u),
              healthy.end());

    // The repartitioned job avoids the stuck rank entirely, so with no
    // other fault source the logits are bit-identical to the clean run
    // (functional results are partition-invariant).
    const auto out = backend.runFunctionalJob(m.classifier(), *m.screener,
                                              m.h_batch, 4);
    for (size_t i = 0; i < clean.logits.size(); ++i)
        EXPECT_EQ(out.logits[i], clean.logits[i]) << "item " << i;
    EXPECT_EQ(out.candidates, clean.candidates);
    EXPECT_EQ(out.faults.stuck_reads, 0u)
        << "a blacklisted rank must never be read";
}

TEST(ResilientBackend, RunJobChargesBlacklistProbesAndRepartitions)
{
    JobSpec spec;
    spec.categories = 100000;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.candidates = 2000;

    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.stuck_ranks = {1};
    const ResilientBackend degraded(cfg);
    const TimingResult t_degraded = degraded.runJob(spec);

    const EnmcBackend plain{SystemConfig{}};
    const TimingResult t_all = plain.runJob(spec);

    EXPECT_EQ(t_degraded.ranks, cfg.totalRanks() - 1);
    EXPECT_GT(t_degraded.seconds, t_all.seconds)
        << "losing a rank must cost throughput";
}

TEST(ResilientBackend, DegradationDisabledPanicsOnPersistentErrors)
{
    const SmallModel m = makeSmallModel(/*categories=*/512,
                                        /*hidden=*/32,
                                        /*batch=*/1);

    // BER high enough that every attempt (original + retries) sees
    // detected-uncorrectable words; with degrade off that is fatal.
    SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = 1;
    cfg.fault.data_ber = 5e-3;
    cfg.resilient = true;
    cfg.resilience.max_retries = 1;
    cfg.resilience.degrade = false;
    const EnmcSystem sys(cfg);
    EXPECT_DEATH(sys.runFunctional(m.classifier(), *m.screener, m.h_batch,
                                   1),
                 "uncorrectable");
}

TEST(ResilientBackend, AllRanksBlacklistedIsFatal)
{
    SystemConfig cfg;
    cfg.fault.enabled = true;
    for (uint32_t r = 0; r < cfg.totalRanks(); ++r)
        cfg.fault.stuck_ranks.push_back(r);
    const ResilientBackend backend(cfg);
    JobSpec spec;
    spec.categories = 4096;
    spec.hidden = 64;
    spec.reduced = 16;
    spec.candidates = 64;
    EXPECT_DEATH(backend.runJob(spec), "blacklisted");
}

} // namespace
} // namespace enmc::runtime
