/**
 * @file
 * SECDED(72,64) codec tests: clean roundtrip, the single-error-correct /
 * double-error-detect guarantees over every bit position, and the honest
 * behaviour beyond the design point (>= 3 flips never decode as clean).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fault/ecc.h"

namespace enmc::fault {
namespace {

std::vector<uint64_t>
sampleWords()
{
    std::vector<uint64_t> words = {
        0x0000000000000000ull, 0xffffffffffffffffull,
        0x0000000000000001ull, 0x8000000000000000ull,
        0xaaaaaaaaaaaaaaaaull, 0x5555555555555555ull,
        0xdeadbeefcafef00dull,
    };
    Rng rng(42);
    for (int i = 0; i < 25; ++i)
        words.push_back(rng());
    return words;
}

TEST(Ecc, CleanRoundtrip)
{
    for (const uint64_t w : sampleWords()) {
        const uint8_t check = eccEncode(w);
        const EccDecoded dec = eccDecode(w, check);
        EXPECT_EQ(dec.status, EccStatus::Ok);
        EXPECT_EQ(dec.data, w);
        EXPECT_EQ(dec.bit, -1);
    }
}

TEST(Ecc, EverySingleBitErrorCorrected)
{
    for (const uint64_t w : sampleWords()) {
        const uint8_t clean_check = eccEncode(w);
        for (int bit = 0; bit < kEccCodewordBits; ++bit) {
            uint64_t data = w;
            uint8_t check = clean_check;
            eccFlipBit(data, check, bit);
            const EccDecoded dec = eccDecode(data, check);
            EXPECT_TRUE(dec.status == EccStatus::CorrectedData ||
                        dec.status == EccStatus::CorrectedCheck)
                << "bit " << bit << " status "
                << eccStatusName(dec.status);
            EXPECT_EQ(dec.data, w) << "bit " << bit;
            EXPECT_EQ(dec.bit, bit);
        }
    }
}

TEST(Ecc, CheckAndParityFlipsLeaveDataIntact)
{
    const uint64_t w = 0x123456789abcdef0ull;
    const uint8_t clean_check = eccEncode(w);
    for (int bit = kEccDataBits; bit < kEccCodewordBits; ++bit) {
        uint64_t data = w;
        uint8_t check = clean_check;
        eccFlipBit(data, check, bit);
        EXPECT_EQ(data, w) << "check-bit flip must not touch data";
        const EccDecoded dec = eccDecode(data, check);
        EXPECT_EQ(dec.status, EccStatus::CorrectedCheck) << "bit " << bit;
        EXPECT_EQ(dec.data, w);
    }
}

TEST(Ecc, EveryDoubleBitErrorDetected)
{
    for (const uint64_t w :
         {0x0ull, 0xffffffffffffffffull, 0xdeadbeefcafef00dull}) {
        const uint8_t clean_check = eccEncode(w);
        for (int i = 0; i < kEccCodewordBits; ++i) {
            for (int j = i + 1; j < kEccCodewordBits; ++j) {
                uint64_t data = w;
                uint8_t check = clean_check;
                eccFlipBit(data, check, i);
                eccFlipBit(data, check, j);
                const EccDecoded dec = eccDecode(data, check);
                EXPECT_EQ(dec.status, EccStatus::DetectedUncorrectable)
                    << "bits " << i << "," << j;
            }
        }
    }
}

TEST(Ecc, TripleBitErrorsNeverDecodeClean)
{
    // Beyond the design point SECDED may miscorrect (that is the
    // `escaped` counter's job), but an odd number of flips always trips
    // the overall parity, so the decoder must never report Ok.
    const uint64_t w = 0xfeedface12345678ull;
    const uint8_t clean_check = eccEncode(w);
    Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        int b0 = static_cast<int>(rng() % kEccCodewordBits);
        int b1 = static_cast<int>(rng() % kEccCodewordBits);
        int b2 = static_cast<int>(rng() % kEccCodewordBits);
        if (b0 == b1 || b1 == b2 || b0 == b2)
            continue;
        uint64_t data = w;
        uint8_t check = clean_check;
        eccFlipBit(data, check, b0);
        eccFlipBit(data, check, b1);
        eccFlipBit(data, check, b2);
        const EccDecoded dec = eccDecode(data, check);
        EXPECT_NE(dec.status, EccStatus::Ok)
            << "bits " << b0 << "," << b1 << "," << b2;
    }
}

TEST(Ecc, StatusNamesAreStable)
{
    EXPECT_STREQ(eccStatusName(EccStatus::Ok), "ok");
    EXPECT_STREQ(eccStatusName(EccStatus::CorrectedData),
                 "corrected-data");
    EXPECT_STREQ(eccStatusName(EccStatus::CorrectedCheck),
                 "corrected-check");
    EXPECT_STREQ(eccStatusName(EccStatus::DetectedUncorrectable),
                 "detected-uncorrectable");
}

} // namespace
} // namespace enmc::fault
