/**
 * @file
 * SECDED(72,64) codec tests: clean roundtrip, the single-error-correct /
 * double-error-detect guarantees over every bit position, and the honest
 * behaviour beyond the design point (>= 3 flips never decode as clean).
 * Plus the large-codeword scheme table (geometry, names, block
 * classification) and the decode-latency model they feed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dram/timing.h"
#include "fault/ecc.h"
#include "fault/injector.h"

namespace enmc::fault {
namespace {

std::vector<uint64_t>
sampleWords()
{
    std::vector<uint64_t> words = {
        0x0000000000000000ull, 0xffffffffffffffffull,
        0x0000000000000001ull, 0x8000000000000000ull,
        0xaaaaaaaaaaaaaaaaull, 0x5555555555555555ull,
        0xdeadbeefcafef00dull,
    };
    Rng rng(42);
    for (int i = 0; i < 25; ++i)
        words.push_back(rng());
    return words;
}

TEST(Ecc, CleanRoundtrip)
{
    for (const uint64_t w : sampleWords()) {
        const uint8_t check = eccEncode(w);
        const EccDecoded dec = eccDecode(w, check);
        EXPECT_EQ(dec.status, EccStatus::Ok);
        EXPECT_EQ(dec.data, w);
        EXPECT_EQ(dec.bit, -1);
    }
}

TEST(Ecc, EverySingleBitErrorCorrected)
{
    for (const uint64_t w : sampleWords()) {
        const uint8_t clean_check = eccEncode(w);
        for (int bit = 0; bit < kEccCodewordBits; ++bit) {
            uint64_t data = w;
            uint8_t check = clean_check;
            eccFlipBit(data, check, bit);
            const EccDecoded dec = eccDecode(data, check);
            EXPECT_TRUE(dec.status == EccStatus::CorrectedData ||
                        dec.status == EccStatus::CorrectedCheck)
                << "bit " << bit << " status "
                << eccStatusName(dec.status);
            EXPECT_EQ(dec.data, w) << "bit " << bit;
            EXPECT_EQ(dec.bit, bit);
        }
    }
}

TEST(Ecc, CheckAndParityFlipsLeaveDataIntact)
{
    const uint64_t w = 0x123456789abcdef0ull;
    const uint8_t clean_check = eccEncode(w);
    for (int bit = kEccDataBits; bit < kEccCodewordBits; ++bit) {
        uint64_t data = w;
        uint8_t check = clean_check;
        eccFlipBit(data, check, bit);
        EXPECT_EQ(data, w) << "check-bit flip must not touch data";
        const EccDecoded dec = eccDecode(data, check);
        EXPECT_EQ(dec.status, EccStatus::CorrectedCheck) << "bit " << bit;
        EXPECT_EQ(dec.data, w);
    }
}

TEST(Ecc, EveryDoubleBitErrorDetected)
{
    // Exhaustive: all C(72,2) flip pairs over every sample word
    // (randomized + adversarial patterns). A double error must come back
    // Detected — never Ok (missed) and never Corrected (miscorrected,
    // which would silently corrupt data the caller trusts).
    for (const uint64_t w : sampleWords()) {
        const uint8_t clean_check = eccEncode(w);
        for (int i = 0; i < kEccCodewordBits; ++i) {
            for (int j = i + 1; j < kEccCodewordBits; ++j) {
                uint64_t data = w;
                uint8_t check = clean_check;
                eccFlipBit(data, check, i);
                eccFlipBit(data, check, j);
                const EccDecoded dec = eccDecode(data, check);
                ASSERT_EQ(dec.status, EccStatus::DetectedUncorrectable)
                    << "word " << std::hex << w << std::dec << " bits "
                    << i << "," << j << " -> "
                    << eccStatusName(dec.status);
            }
        }
    }
}

TEST(Ecc, TripleBitErrorsNeverDecodeClean)
{
    // Beyond the design point SECDED may miscorrect (that is the
    // `escaped` counter's job), but an odd number of flips always trips
    // the overall parity, so the decoder must never report Ok.
    const uint64_t w = 0xfeedface12345678ull;
    const uint8_t clean_check = eccEncode(w);
    Rng rng(7);
    for (int trial = 0; trial < 500; ++trial) {
        int b0 = static_cast<int>(rng() % kEccCodewordBits);
        int b1 = static_cast<int>(rng() % kEccCodewordBits);
        int b2 = static_cast<int>(rng() % kEccCodewordBits);
        if (b0 == b1 || b1 == b2 || b0 == b2)
            continue;
        uint64_t data = w;
        uint8_t check = clean_check;
        eccFlipBit(data, check, b0);
        eccFlipBit(data, check, b1);
        eccFlipBit(data, check, b2);
        const EccDecoded dec = eccDecode(data, check);
        EXPECT_NE(dec.status, EccStatus::Ok)
            << "bits " << b0 << "," << b1 << "," << b2;
    }
}

TEST(Ecc, StatusNamesAreStable)
{
    EXPECT_STREQ(eccStatusName(EccStatus::Ok), "ok");
    EXPECT_STREQ(eccStatusName(EccStatus::CorrectedData),
                 "corrected-data");
    EXPECT_STREQ(eccStatusName(EccStatus::CorrectedCheck),
                 "corrected-check");
    EXPECT_STREQ(eccStatusName(EccStatus::DetectedUncorrectable),
                 "detected-uncorrectable");
}

TEST(EccScheme, GeometryTableIsHammingFeasible)
{
    // Every SEC-DED geometry needs 2^(r-1) >= data + r (r includes the
    // overall parity bit), and check-bit overhead must fall as codewords
    // grow — that trade is the whole point of block codes.
    const EccScheme schemes[] = {EccScheme::Word72, EccScheme::Block512B,
                                 EccScheme::Block1KB, EccScheme::Block4KB};
    double prev_overhead = 1.0;
    for (const EccScheme s : schemes) {
        const EccGeometry g = eccGeometry(s);
        EXPECT_EQ(g.data_bits % 8, 0u) << eccSchemeName(s);
        EXPECT_GE(1ull << (g.check_bits - 1),
                  g.data_bits + g.check_bits) << eccSchemeName(s);
        EXPECT_LT(g.overhead(), prev_overhead) << eccSchemeName(s);
        prev_overhead = g.overhead();
    }
    EXPECT_EQ(eccGeometry(EccScheme::Word72).data_bits, 64u);
    EXPECT_EQ(eccGeometry(EccScheme::Word72).check_bits, 8u);
    EXPECT_EQ(eccGeometry(EccScheme::Block4KB).dataBytes(), 4096u);
    EXPECT_EQ(eccGeometry(EccScheme::None).codewordBits(), 0u);
}

TEST(EccScheme, NamesRoundtrip)
{
    for (int i = 0; i < kNumEccSchemes; ++i) {
        const EccScheme s = static_cast<EccScheme>(i);
        EccScheme parsed;
        ASSERT_TRUE(eccSchemeFromName(eccSchemeName(s), &parsed))
            << eccSchemeName(s);
        EXPECT_EQ(parsed, s);
    }
    EccScheme out;
    EXPECT_FALSE(eccSchemeFromName("hamming128", &out));
    EXPECT_FALSE(eccSchemeFromName("", &out));

    EXPECT_STREQ(protectionName(Protection::None), "none");
    EXPECT_STREQ(protectionName(Protection::Weak), "weak");
    EXPECT_STREQ(protectionName(Protection::Strong), "strong");
}

TEST(EccScheme, BlockClassificationContract)
{
    for (const EccScheme s : {EccScheme::Block512B, EccScheme::Block1KB,
                              EccScheme::Block4KB}) {
        // SEC-DED guarantees hold regardless of the alias draw.
        for (const double u : {0.0, 0.5, 0.999}) {
            EXPECT_EQ(eccClassifyBlock(s, 0, u), BlockOutcome::Clean);
            EXPECT_EQ(eccClassifyBlock(s, 1, u), BlockOutcome::Corrected);
            EXPECT_EQ(eccClassifyBlock(s, 2, u), BlockOutcome::Detected);
            // An even flip count >= 4 never aliases to a correctable
            // syndrome (overall parity matches, syndrome nonzero).
            EXPECT_EQ(eccClassifyBlock(s, 4, u), BlockOutcome::Detected);
            EXPECT_EQ(eccClassifyBlock(s, 100, u), BlockOutcome::Detected);
        }
        // Odd >= 3: miscorrects exactly when the alias draw lands below
        // codewordBits / 2^(r-1), detected otherwise.
        const EccGeometry g = eccGeometry(s);
        const double alias = static_cast<double>(g.codewordBits()) /
                             static_cast<double>(1ull << (g.check_bits - 1));
        ASSERT_GT(alias, 0.0);
        ASSERT_LT(alias, 1.0);
        EXPECT_EQ(eccClassifyBlock(s, 3, alias / 2),
                  BlockOutcome::Miscorrected);
        EXPECT_EQ(eccClassifyBlock(s, 3, alias),
                  BlockOutcome::Detected);
        EXPECT_EQ(eccClassifyBlock(s, 5, 0.9999),
                  BlockOutcome::Detected);
    }
}

TEST(EccScheme, DecodeLatencyScalesWithCodewordSize)
{
    const dram::Timing t = dram::Timing::ddr4_2400();
    EXPECT_EQ(t.eccDecodeCycles(EccScheme::None), 0u);
    EXPECT_EQ(t.eccDecodeCycles(EccScheme::Word72), 2u);
    EXPECT_EQ(t.eccDecodeCycles(EccScheme::Block512B), 10u);
    EXPECT_EQ(t.eccDecodeCycles(EccScheme::Block1KB), 18u);
    EXPECT_EQ(t.eccDecodeCycles(EccScheme::Block4KB), 66u);

    // Narrower XOR trees fold more cycles; the model must follow.
    dram::Timing narrow = t;
    narrow.ecc_xor_bits_per_cycle = 128;
    EXPECT_GT(narrow.eccDecodeCycles(EccScheme::Block4KB),
              t.eccDecodeCycles(EccScheme::Block4KB));
}

TEST(EccScheme, SchemeForRespectsProtectionClassAndMasterSwitch)
{
    FaultConfig cfg;
    cfg.strong_scheme = EccScheme::Word72;
    cfg.weak_scheme = EccScheme::None;
    cfg.ecc = true;
    EXPECT_EQ(cfg.schemeFor(Protection::Strong), EccScheme::Word72);
    EXPECT_EQ(cfg.schemeFor(Protection::Weak), EccScheme::None);
    EXPECT_EQ(cfg.schemeFor(Protection::None), EccScheme::None);
    cfg.weak_scheme = EccScheme::Block1KB;
    EXPECT_EQ(cfg.schemeFor(Protection::Weak), EccScheme::Block1KB);
    cfg.ecc = false; // the master switch turns every class off
    EXPECT_EQ(cfg.schemeFor(Protection::Strong), EccScheme::None);
    EXPECT_EQ(cfg.schemeFor(Protection::Weak), EccScheme::None);
}

} // namespace
} // namespace enmc::fault
