/**
 * @file
 * Tests for the asymmetric (rmin/rmax + zero-point) per-row weight
 * quantization scheme behind the `QuantScheme` knob.
 *
 * The contracts under test:
 *  - values on the asymmetric code grid round-trip exactly (encode then
 *    decode is the identity for representable values);
 *  - on a skewed-rows fixture (values offset well away from zero) the
 *    asymmetric GEMV agrees with FP32 at least as well as — and for this
 *    fixture strictly better than — the symmetric GEMV;
 *  - a degenerate all-zero row is a fatal calibration error (death test);
 *  - the scheme propagates through the screener freeze and the
 *    serializer (save/load round-trips scheme, codes, zero-points);
 *  - symmetric remains the default and its output stays untouched.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "runtime/api.h"
#include "screening/screener.h"
#include "screening/serialize.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "workloads/synthetic.h"

namespace enmc::tensor {
namespace {

/** Rows offset from zero: the regime symmetric code space wastes. */
Matrix
skewedMatrix(size_t rows, size_t cols)
{
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m(r, c) = 5.0f +
                      static_cast<float>((r * 31 + c * 17) % 13) / 13.0f;
    return m;
}

TEST(QuantAsym, GridValuesRoundTripExactly)
{
    // Row = {-3, -2, ..., 12}: range [-3, 12] spans 16 INT4 levels with
    // scale exactly 1 and zero-point 3, so every entry is representable.
    Matrix m(1, 16);
    for (size_t c = 0; c < 16; ++c)
        m(0, c) = static_cast<float>(c) - 3.0f;

    const QuantizedMatrix q = quantizeAsymmetric(m, QuantBits::Int4);
    ASSERT_EQ(q.scheme, QuantScheme::Asymmetric);
    ASSERT_EQ(q.zero_points.size(), 1u);
    EXPECT_FLOAT_EQ(q.scales[0], 1.0f);
    EXPECT_EQ(q.zero_points[0], 3);
    EXPECT_FLOAT_EQ(q.rowMin(0), -3.0f);
    EXPECT_FLOAT_EQ(q.rowMax(0), 12.0f);
    for (size_t c = 0; c < 16; ++c)
        EXPECT_EQ(q.values[c], static_cast<int8_t>(c)) << "code " << c;

    const Matrix back = q.dequantize();
    for (size_t c = 0; c < 16; ++c)
        EXPECT_FLOAT_EQ(back(0, c), m(0, c)) << "element " << c;
}

TEST(QuantAsym, CodesStayInUnsignedLevelRange)
{
    Rng rng(3);
    Matrix m(8, 32);
    for (size_t r = 0; r < m.rows(); ++r)
        for (size_t c = 0; c < m.cols(); ++c)
            m(r, c) = static_cast<float>(rng.normal(2.0, 1.5));
    for (const QuantBits bits :
         {QuantBits::Int8, QuantBits::Int4, QuantBits::Int2}) {
        const QuantizedMatrix q = quantizeAsymmetric(m, bits);
        const int span = quantLevelSpan(bits);
        for (size_t r = 0; r < q.rows; ++r) {
            EXPECT_GE(q.zero_points[r], 0);
            EXPECT_LE(q.zero_points[r], span);
            // Codes are unsigned levels in the int8 lanes (255 at INT8
            // wraps the signed view) — read back via uint8_t.
            for (const int8_t v : q.row(r)) {
                const int code = static_cast<uint8_t>(v);
                EXPECT_GE(code, 0);
                EXPECT_LE(code, span);
            }
        }
    }
}

TEST(QuantAsym, RangeAlwaysSpansZero)
{
    // All-positive rows: rmin clamps to 0 so real 0.0 is representable
    // (code == zero-point == 0), per the chainer Linear_NonScaled scheme.
    const Matrix m = skewedMatrix(4, 16);
    const QuantizedMatrix q = quantizeAsymmetric(m, QuantBits::Int4);
    for (size_t r = 0; r < q.rows; ++r) {
        // All-positive row: rmin clamps to 0, so the zero-point is code 0
        // and real 0.0 is exactly representable.
        EXPECT_EQ(q.zero_points[r], 0);
        EXPECT_FLOAT_EQ(q.rowMin(r), 0.0f);
        EXPECT_GE(q.rowMax(r), 0.0f);
    }
}

TEST(QuantAsym, SkewedRowsAgreeWithFp32BetterThanSymmetric)
{
    const size_t rows = 32, cols = 64;
    const Matrix w = skewedMatrix(rows, cols);
    Rng rng(11);
    Vector h(cols);
    for (auto &x : h)
        x = static_cast<float>(rng.normal());
    // INT8 activations so the weight scheme dominates the error budget.
    const QuantizedVector hq = quantize(h, QuantBits::Int8);

    Vector z_fp32(rows);
    for (size_t r = 0; r < rows; ++r)
        z_fp32[r] = dot(w.row(r), h);

    const QuantizedMatrix wq_sym = quantize(w, QuantBits::Int4);
    const QuantizedMatrix wq_asym =
        quantize(w, QuantBits::Int4, QuantScheme::Asymmetric);
    const Vector z_sym = gemvQuantized(wq_sym, hq, {});
    const Vector z_asym = gemvQuantized(wq_asym, hq, {});

    double err_sym = 0.0, err_asym = 0.0;
    for (size_t r = 0; r < rows; ++r) {
        err_sym = std::max(
            err_sym, std::fabs(static_cast<double>(z_sym[r] - z_fp32[r])));
        err_asym = std::max(
            err_asym,
            std::fabs(static_cast<double>(z_asym[r] - z_fp32[r])));
    }
    // Rows live in [5, 6): symmetric INT4 spends its 15 levels on
    // [-6, 6] (step ~0.86); asymmetric spends them on [0, 6) (step
    // ~0.4). The gap must show, not just not-regress.
    EXPECT_LT(err_asym, err_sym)
        << "asym max |z - z_fp32| = " << err_asym
        << ", sym = " << err_sym;
}

TEST(QuantAsym, SchemeDispatchSymmetricIsBitIdenticalDefault)
{
    const Matrix w = skewedMatrix(8, 32);
    const QuantizedMatrix a = quantize(w, QuantBits::Int4);
    const QuantizedMatrix b =
        quantize(w, QuantBits::Int4, QuantScheme::Symmetric);
    EXPECT_EQ(b.scheme, QuantScheme::Symmetric);
    EXPECT_TRUE(b.zero_points.empty());
    ASSERT_EQ(a.values.size(), b.values.size());
    EXPECT_EQ(std::memcmp(a.values.data(), b.values.data(),
                          a.values.size()),
              0);
    ASSERT_EQ(a.scales.size(), b.scales.size());
    EXPECT_EQ(std::memcmp(a.scales.data(), b.scales.data(),
                          a.scales.size() * sizeof(float)),
              0);
}

TEST(QuantAsymDeathTest, DegenerateAllZeroRowIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Matrix m(2, 8);
    for (size_t c = 0; c < 8; ++c)
        m(0, c) = 1.0f + static_cast<float>(c);
    // Row 1 stays all-zero: rmin == rmax == 0 has no calibration range.
    EXPECT_DEATH(quantizeAsymmetric(m, QuantBits::Int4), "degenerate row");
}

TEST(QuantAsymScreener, SchemeSurvivesFreezeForwardAndSerialize)
{
    workloads::SyntheticConfig mcfg;
    mcfg.categories = 512;
    mcfg.hidden = 64;
    workloads::SyntheticModel model(mcfg);
    Rng rng = model.makeRng(1);
    const auto train = model.sampleHiddenBatch(rng, 96);
    const auto val = model.sampleHiddenBatch(rng, 32);
    const auto queries = model.sampleHiddenBatch(rng, 4);

    runtime::ClassifierOptions opt;
    opt.candidates = 32;
    opt.scheme = QuantScheme::Asymmetric;
    runtime::EnmcClassifier clf(model.classifier(), opt);
    clf.calibrate(train, val);

    const QuantizedMatrix &wq = clf.screener().quantizedWeights();
    EXPECT_EQ(wq.scheme, QuantScheme::Asymmetric);
    EXPECT_EQ(wq.zero_points.size(), mcfg.categories);

    const auto out = clf.forward(queries, 5);
    ASSERT_EQ(out.size(), queries.size());
    for (const auto &o : out) {
        EXPECT_FALSE(o.candidates.empty());
        EXPECT_EQ(o.topk.size(), 5u);
    }

    // Serializer round-trip: scheme, codes, and zero-points all survive.
    const std::string path =
        ::testing::TempDir() + "/asym_screener.enmc";
    clf.save(path);
    runtime::EnmcClassifier loaded(model.classifier(), opt);
    loaded.load(path);
    std::remove(path.c_str());

    const QuantizedMatrix &lq = loaded.screener().quantizedWeights();
    EXPECT_EQ(lq.scheme, QuantScheme::Asymmetric);
    ASSERT_EQ(lq.values.size(), wq.values.size());
    EXPECT_EQ(std::memcmp(lq.values.data(), wq.values.data(),
                          wq.values.size()),
              0);
    ASSERT_EQ(lq.zero_points, wq.zero_points);

    const auto reloaded = loaded.forward(queries, 5);
    for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(reloaded[i].probabilities.size(),
                  out[i].probabilities.size());
        EXPECT_EQ(std::memcmp(reloaded[i].probabilities.data(),
                              out[i].probabilities.data(),
                              out[i].probabilities.size() * sizeof(float)),
                  0)
            << "reloaded asym screener diverged on query " << i;
    }
}

} // namespace
} // namespace enmc::tensor
