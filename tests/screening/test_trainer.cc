/**
 * @file
 * Tests for screener distillation (Algorithm 1).
 */

#include <gtest/gtest.h>

#include "screening/trainer.h"
#include "tensor/topk.h"
#include "workloads/synthetic.h"

namespace enmc::screening {
namespace {

struct TrainerFixture
{
    TrainerFixture()
        : model(makeConfig()), rng(model.makeRng(1)),
          train_h(model.sampleHiddenBatch(rng, 192)),
          val_h(model.sampleHiddenBatch(rng, 48))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        return cfg;
    }

    Screener
    makeScreener(double scale = 0.5)
    {
        ScreenerConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        cfg.reduction_scale = scale;
        Rng srng(99);
        return Screener(cfg, srng);
    }

    workloads::SyntheticModel model;
    Rng rng;
    std::vector<tensor::Vector> train_h;
    std::vector<tensor::Vector> val_h;
};

TEST(Trainer, ClosedFormInitReachesLowMse)
{
    TrainerFixture s;
    Screener scr = s.makeScreener();
    TrainerConfig cfg;
    cfg.epochs = 1;
    Trainer trainer(s.model.classifier(), scr, cfg);
    const double before = trainer.evaluateMse(s.val_h);
    const TrainReport rep = trainer.train(s.train_h, s.val_h);
    EXPECT_LT(rep.final_val_mse, before / 5.0);
}

TEST(Trainer, SgdOnlyAlsoDescends)
{
    TrainerFixture s;
    Screener scr = s.makeScreener();
    TrainerConfig cfg;
    cfg.closed_form_init = false;
    cfg.epochs = 4;
    cfg.convergence_ratio = 0.0; // run all epochs
    Trainer trainer(s.model.classifier(), scr, cfg);
    const double before = trainer.evaluateMse(s.val_h);
    const TrainReport rep = trainer.train(s.train_h, s.val_h);
    EXPECT_LT(rep.final_val_mse, before);
    EXPECT_EQ(rep.epochs.size(), 4u);
    // Train loss is non-increasing across epochs (convex problem).
    for (size_t i = 0; i + 1 < rep.epochs.size(); ++i)
        EXPECT_LE(rep.epochs[i + 1].train_mse,
                  rep.epochs[i].train_mse * 1.05);
}

TEST(Trainer, ConvergenceStopsEarly)
{
    TrainerFixture s;
    Screener scr = s.makeScreener();
    TrainerConfig cfg;
    cfg.epochs = 50;
    cfg.convergence_ratio = 0.5; // aggressive: stop quickly
    Trainer trainer(s.model.classifier(), scr, cfg);
    const TrainReport rep = trainer.train(s.train_h, s.val_h);
    EXPECT_TRUE(rep.converged_early);
    EXPECT_LT(rep.epochs.size(), 50u);
}

TEST(Trainer, LargerReductionScaleApproximatesBetter)
{
    TrainerFixture s;
    auto final_mse = [&](double scale) {
        Screener scr = s.makeScreener(scale);
        Trainer trainer(s.model.classifier(), scr, TrainerConfig{});
        return trainer.train(s.train_h, s.val_h).final_val_mse;
    };
    // Fig. 12(a): more screener parameters -> better approximation.
    EXPECT_LT(final_mse(0.5), final_mse(0.125));
}

TEST(Trainer, TrainedScreenerRanksTrueTopCandidates)
{
    TrainerFixture s;
    Screener scr = s.makeScreener();
    Trainer trainer(s.model.classifier(), scr, TrainerConfig{});
    trainer.train(s.train_h, s.val_h);
    scr.freezeQuantized();

    double rec = 0.0;
    const size_t m = 16;
    for (const auto &h : s.val_h) {
        const auto approx = scr.approximateQuantized(h);
        const auto cands = tensor::topkIndices(approx, m);
        const auto truth =
            tensor::topkIndices(s.model.classifier().logits(h), 4);
        rec += tensor::recall(cands, truth);
    }
    EXPECT_GT(rec / s.val_h.size(), 0.85);
}

TEST(Trainer, TuneThresholdYieldsEnoughCandidates)
{
    TrainerFixture s;
    Screener scr = s.makeScreener();
    Trainer trainer(s.model.classifier(), scr, TrainerConfig{});
    trainer.train(s.train_h, s.val_h);
    scr.freezeQuantized();

    const size_t target = 24;
    const float cut = tuneThreshold(scr, s.val_h, target);
    size_t empty = 0;
    double total = 0.0;
    for (const auto &h : s.val_h) {
        const auto approx = scr.approximateQuantized(h);
        const auto sel = tensor::thresholdIndices(approx, cut);
        empty += sel.empty();
        total += static_cast<double>(sel.size());
    }
    // The tuned cut provisions ~2x the target on average (see
    // tuneThreshold) and must leave almost no sample with an empty
    // candidate set.
    EXPECT_LE(empty, s.val_h.size() / 10);
    EXPECT_GT(total / s.val_h.size(), target * 0.5);
    EXPECT_LT(total / s.val_h.size(), target * 6.0);
}

TEST(TrainerDeathTest, DimensionMismatch)
{
    TrainerFixture s;
    ScreenerConfig cfg;
    cfg.categories = 100; // != 512
    cfg.hidden = 48;
    Rng rng(1);
    Screener scr(cfg, rng);
    EXPECT_DEATH(Trainer(s.model.classifier(), scr, TrainerConfig{}),
                 "category mismatch");
}

} // namespace
} // namespace enmc::screening

namespace enmc::screening {
namespace {

/**
 * Eq. 4 is convex, so the closed-form ridge solution must dominate any
 * SGD-only run of the same budget — the property that justifies using it
 * as the "trained to convergence" implementation of Algorithm 1.
 */
TEST(Trainer, ClosedFormDominatesSgdOnly)
{
    TrainerFixture s;
    Screener cf = s.makeScreener();
    TrainerConfig cf_cfg;
    cf_cfg.epochs = 1;
    Trainer t1(s.model.classifier(), cf, cf_cfg);
    const double cf_mse = t1.train(s.train_h, s.val_h).final_val_mse;

    Screener sgd = s.makeScreener();
    TrainerConfig sgd_cfg;
    sgd_cfg.closed_form_init = false;
    sgd_cfg.epochs = 8;
    sgd_cfg.convergence_ratio = 0.0;
    Trainer t2(s.model.classifier(), sgd, sgd_cfg);
    const double sgd_mse = t2.train(s.train_h, s.val_h).final_val_mse;

    EXPECT_LE(cf_mse, sgd_mse * 1.05);
}

/** SGD refinement from the closed-form point must not diverge. */
TEST(Trainer, SgdRefinementStaysNearOptimum)
{
    TrainerFixture s;
    Screener scr = s.makeScreener();
    TrainerConfig cfg;
    cfg.epochs = 6;
    cfg.convergence_ratio = 0.0;
    Trainer trainer(s.model.classifier(), scr, cfg);
    const TrainReport rep = trainer.train(s.train_h, s.val_h);
    const double first = rep.epochs.front().val_mse;
    const double last = rep.epochs.back().val_mse;
    EXPECT_LE(last, first * 1.25);
}

} // namespace
} // namespace enmc::screening
