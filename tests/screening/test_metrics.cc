/**
 * @file
 * Tests for quality metrics and the cost-model speedup.
 */

#include <gtest/gtest.h>

#include "screening/metrics.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::screening {
namespace {

TEST(CostSpeedup, MemoryBoundRatio)
{
    Cost base{100, 3200};     // bytes dominate: 3200
    Cost cand{100, 320};
    EXPECT_NEAR(costSpeedup(base, cand), 10.0, 1e-9);
}

TEST(CostSpeedup, ComputeBoundWhenFlopsDominate)
{
    // bytes_per_flop 0.064: 1e6 flops ~ 64000 byte-equivalents > bytes.
    Cost base{1'000'000, 100};
    Cost cand{100'000, 100};
    EXPECT_NEAR(costSpeedup(base, cand), 10.0, 1e-9);
}

TEST(CostSpeedup, MixedRegimes)
{
    // Baseline memory-bound, candidate compute-bound.
    Cost base{0, 64000};
    Cost cand{1'000'000, 0}; // 64000 byte-equivalents
    EXPECT_NEAR(costSpeedup(base, cand), 1.0, 1e-9);
}

class QualityTest : public ::testing::Test
{
  protected:
    QualityTest()
        : model_(makeConfig())
    {
        Rng data = model_.makeRng(7);
        train_ = model_.sampleHiddenBatch(data, 160);
        eval_ = model_.sampleHiddenBatch(data, 32);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        return cfg;
    }

    Screener
    trainedScreener(size_t top_m)
    {
        ScreenerConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        cfg.reduction_scale = 0.5;
        cfg.top_m = top_m;
        Rng rng(11);
        Screener scr(cfg, rng);
        Trainer trainer(model_.classifier(), scr, TrainerConfig{});
        trainer.train(train_, {});
        scr.freezeQuantized();
        return scr;
    }

    workloads::SyntheticModel model_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> eval_;
};

TEST_F(QualityTest, TrainedScreenerHasHighAgreement)
{
    Screener scr = trainedScreener(32);
    Pipeline pipe(model_.classifier(), scr);
    const QualityReport rep = evaluateQuality(pipe, eval_, 5);
    EXPECT_GT(rep.top1_agreement, 0.9);
    EXPECT_GT(rep.candidate_recall, 0.85);
    EXPECT_GT(rep.cost_speedup, 2.0);
    EXPECT_EQ(rep.samples, eval_.size());
    EXPECT_NEAR(rep.avg_candidates, 32.0, 1e-9);
}

/** Property: recall and agreement are non-decreasing in candidate count. */
class RecallMonotone : public QualityTest,
                       public ::testing::WithParamInterface<size_t>
{
};

TEST_P(RecallMonotone, MoreCandidatesNeverHurt)
{
    const size_t m = GetParam();
    Screener small = trainedScreener(m);
    Screener large = trainedScreener(m * 4);
    Pipeline p_small(model_.classifier(), small);
    Pipeline p_large(model_.classifier(), large);
    const QualityReport r_small = evaluateQuality(p_small, eval_, 5);
    const QualityReport r_large = evaluateQuality(p_large, eval_, 5);
    EXPECT_GE(r_large.candidate_recall + 1e-9, r_small.candidate_recall);
    EXPECT_GE(r_large.topk_agreement + 0.02, r_small.topk_agreement);
    // And the speedup shrinks as candidates grow.
    EXPECT_LT(r_large.cost_speedup, r_small.cost_speedup + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(CandidateSweep, RecallMonotone,
                         ::testing::Values(4, 8, 16, 32));

TEST_F(QualityTest, UntrainedScreenerScoresPoorly)
{
    ScreenerConfig cfg;
    cfg.categories = 512;
    cfg.hidden = 48;
    cfg.top_m = 16;
    Rng rng(13);
    Screener scr(cfg, rng); // random init, never trained
    scr.freezeQuantized();
    Pipeline pipe(model_.classifier(), scr);
    const QualityReport rep = evaluateQuality(pipe, eval_, 5);
    Screener trained = trainedScreener(16);
    Pipeline tpipe(model_.classifier(), trained);
    const QualityReport trep = evaluateQuality(tpipe, eval_, 5);
    EXPECT_GT(trep.candidate_recall, rep.candidate_recall);
    EXPECT_GT(trep.top1_agreement, rep.top1_agreement);
}

TEST_F(QualityTest, LogitRmseSmallAfterTraining)
{
    Screener scr = trainedScreener(32);
    Pipeline pipe(model_.classifier(), scr);
    const QualityReport rep = evaluateQuality(pipe, eval_, 5);
    EXPECT_LT(rep.logit_rmse, 1.5);
}

} // namespace
} // namespace enmc::screening
