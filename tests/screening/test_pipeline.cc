/**
 * @file
 * Tests for the candidates-only classification pipeline (Fig. 6).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "screening/pipeline.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::screening {
namespace {

class PipelineTest : public ::testing::Test
{
  protected:
    PipelineTest()
        : model_(makeConfig())
    {
        ScreenerConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        cfg.reduction_scale = 0.5;
        cfg.selection = SelectionMode::TopM;
        cfg.top_m = 20;
        Rng rng(3);
        screener_ = std::make_unique<Screener>(cfg, rng);
        Rng data = model_.makeRng(1);
        train_ = model_.sampleHiddenBatch(data, 128);
        Trainer trainer(model_.classifier(), *screener_, TrainerConfig{});
        trainer.train(train_, {});
        screener_->freezeQuantized();
        eval_ = model_.sampleHiddenBatch(data, 16);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        return cfg;
    }

    workloads::SyntheticModel model_;
    std::unique_ptr<Screener> screener_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> eval_;
};

TEST_F(PipelineTest, CandidateLogitsAreExact)
{
    Pipeline pipe(model_.classifier(), *screener_);
    for (const auto &h : eval_) {
        const PipelineResult r = pipe.infer(h);
        const tensor::Vector full = model_.classifier().logits(h);
        for (uint32_t c : r.candidates)
            EXPECT_FLOAT_EQ(r.logits[c], full[c]);
    }
}

TEST_F(PipelineTest, NonCandidateLogitsAreApproximate)
{
    Pipeline pipe(model_.classifier(), *screener_);
    const auto &h = eval_[0];
    const PipelineResult r = pipe.infer(h);
    const tensor::Vector approx = screener_->approximateQuantized(h);
    std::unordered_set<uint32_t> cands(r.candidates.begin(),
                                       r.candidates.end());
    for (size_t i = 0; i < r.logits.size(); ++i) {
        if (!cands.count(static_cast<uint32_t>(i))) {
            EXPECT_FLOAT_EQ(r.logits[i], approx[i]);
        }
    }
}

TEST_F(PipelineTest, ProbabilitiesNormalized)
{
    Pipeline pipe(model_.classifier(), *screener_);
    const PipelineResult r = pipe.infer(eval_[0]);
    float sum = 0.0f;
    for (float p : r.probabilities)
        sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST_F(PipelineTest, FullInferenceMatchesClassifier)
{
    Pipeline pipe(model_.classifier(), *screener_);
    const PipelineResult r = pipe.inferFull(eval_[0]);
    const tensor::Vector ref = model_.classifier().logits(eval_[0]);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_FLOAT_EQ(r.logits[i], ref[i]);
    EXPECT_TRUE(r.candidates.empty());
}

TEST_F(PipelineTest, CostAccountingScreeningPlusCandidates)
{
    Pipeline pipe(model_.classifier(), *screener_);
    const PipelineResult r = pipe.infer(eval_[0]);
    const Cost expect_screen = pipe.screeningCost();
    const Cost expect_cand = pipe.candidateCost(r.candidates.size());
    EXPECT_EQ(r.cost.flops, expect_screen.flops + expect_cand.flops);
    EXPECT_EQ(r.cost.bytes_read,
              expect_screen.bytes_read + expect_cand.bytes_read);
}

TEST_F(PipelineTest, ApproximateCostBelowFullCost)
{
    Pipeline pipe(model_.classifier(), *screener_);
    const Cost full = pipe.fullCost();
    const Cost approx_cost = pipe.infer(eval_[0]).cost;
    EXPECT_LT(approx_cost.bytes_read, full.bytes_read);
    EXPECT_LT(approx_cost.flops, full.flops);
}

TEST_F(PipelineTest, ScreeningBytesNearOneThirtySecondOfFull)
{
    // With reduction 0.5 -> k = d/2 and INT4 -> 1/8 of FP32 bytes, the
    // screening phase costs about 1/16 of the full classifier here (the
    // paper's 3.1% figure corresponds to scale 0.25).
    Pipeline pipe(model_.classifier(), *screener_);
    const double ratio =
        static_cast<double>(pipe.screeningCost().bytes_read) /
        static_cast<double>(pipe.fullCost().bytes_read);
    EXPECT_LT(ratio, 0.14);
    EXPECT_GT(ratio, 0.02);
}

TEST_F(PipelineTest, CostOperatorAccumulates)
{
    Cost a{10, 100};
    Cost b{1, 2};
    a += b;
    EXPECT_EQ(a.flops, 11u);
    EXPECT_EQ(a.bytes_read, 102u);
}

TEST(PipelineDeathTest, DimensionMismatch)
{
    workloads::SyntheticConfig mc;
    mc.categories = 64;
    mc.hidden = 16;
    workloads::SyntheticModel model(mc);
    ScreenerConfig cfg;
    cfg.categories = 32; // mismatch
    cfg.hidden = 16;
    Rng rng(5);
    Screener scr(cfg, rng);
    EXPECT_DEATH(Pipeline(model.classifier(), scr), "dimension mismatch");
}

} // namespace
} // namespace enmc::screening
