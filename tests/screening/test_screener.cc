/**
 * @file
 * Tests for the Screener module (Eq. 3 inference path).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "screening/screener.h"
#include "tensor/ops.h"

namespace enmc::screening {
namespace {

ScreenerConfig
config(size_t l = 256, size_t d = 32, double scale = 0.25)
{
    ScreenerConfig cfg;
    cfg.categories = l;
    cfg.hidden = d;
    cfg.reduction_scale = scale;
    return cfg;
}

TEST(ScreenerConfig, ReducedDim)
{
    EXPECT_EQ(config(256, 32, 0.25).reducedDim(), 8u);
    EXPECT_EQ(config(256, 100, 0.25).reducedDim(), 25u);
    // Never collapses to zero.
    EXPECT_EQ(config(256, 2, 0.1).reducedDim(), 1u);
}

TEST(Screener, Dimensions)
{
    Rng rng(1);
    Screener s(config(), rng);
    EXPECT_EQ(s.categories(), 256u);
    EXPECT_EQ(s.reducedDim(), 8u);
    EXPECT_EQ(s.weights().rows(), 256u);
    EXPECT_EQ(s.weights().cols(), 8u);
    EXPECT_EQ(s.bias().size(), 256u);
}

TEST(Screener, ProjectMatchesProjectionObject)
{
    Rng rng(3);
    Screener s(config(), rng);
    tensor::Vector h(32);
    Rng data(5);
    for (auto &v : h)
        v = static_cast<float>(data.normal());
    const tensor::Vector y1 = s.project(h);
    const tensor::Vector y2 = s.projection().apply(h);
    for (size_t i = 0; i < y1.size(); ++i)
        EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(Screener, Fp32ApproxIsGemvOfProjection)
{
    Rng rng(7);
    Screener s(config(64, 16, 0.5), rng);
    tensor::Vector h(16, 0.5f);
    const tensor::Vector z = s.approximateFp32(h);
    const tensor::Vector ref =
        tensor::gemv(s.weights(), s.project(h), s.bias());
    for (size_t i = 0; i < z.size(); ++i)
        EXPECT_FLOAT_EQ(z[i], ref[i]);
}

TEST(Screener, QuantizedRequiresFreeze)
{
    Rng rng(9);
    Screener s(config(), rng);
    tensor::Vector h(32, 1.0f);
    EXPECT_DEATH((void)s.approximateQuantized(h), "freezeQuantized");
}

TEST(Screener, QuantizedTracksFp32)
{
    Rng rng(11);
    ScreenerConfig cfg = config(128, 32, 0.5);
    cfg.quant = tensor::QuantBits::Int8;
    Screener s(cfg, rng);
    s.freezeQuantized();
    tensor::Vector h(32);
    Rng data(13);
    for (auto &v : h)
        v = static_cast<float>(data.normal());
    const tensor::Vector zf = s.approximateFp32(h);
    const tensor::Vector zq = s.approximateQuantized(h);
    // INT8 keeps the approximation within a few percent RMS.
    double rms = std::sqrt(tensor::mse(zf, zq));
    double ref = tensor::norm2(zf) / std::sqrt(double(zf.size()));
    EXPECT_LT(rms / std::max(ref, 1e-9), 0.1);
}

TEST(Screener, ScreenSelectsTopM)
{
    Rng rng(17);
    ScreenerConfig cfg = config();
    cfg.selection = SelectionMode::TopM;
    cfg.top_m = 5;
    Screener s(cfg, rng);
    s.freezeQuantized();
    tensor::Vector h(32, 0.1f);
    const ScreeningResult r = s.screen(h);
    EXPECT_EQ(r.candidates.size(), 5u);
    EXPECT_EQ(r.approx_logits.size(), 256u);
    // Every selected candidate scores at least as high as any unselected.
    float min_sel = r.approx_logits[r.candidates[0]];
    for (uint32_t c : r.candidates)
        min_sel = std::min(min_sel, r.approx_logits[c]);
    size_t better = 0;
    for (float v : r.approx_logits)
        better += (v > min_sel);
    EXPECT_LT(better, 5u);
}

TEST(Screener, ThresholdModeSelectsByCut)
{
    Rng rng(19);
    ScreenerConfig cfg = config();
    cfg.selection = SelectionMode::Threshold;
    cfg.threshold = 1e9f; // nothing passes
    Screener s(cfg, rng);
    s.freezeQuantized();
    tensor::Vector h(32, 0.1f);
    EXPECT_TRUE(s.screen(h).candidates.empty());
    s.setSelection(SelectionMode::Threshold, 0, -1e9f); // everything
    EXPECT_EQ(s.screen(h).candidates.size(), 256u);
}

TEST(Screener, ParameterBytesScalesWithQuant)
{
    Rng rng(23);
    ScreenerConfig cfg8 = config();
    cfg8.quant = tensor::QuantBits::Int8;
    ScreenerConfig cfg4 = config();
    cfg4.quant = tensor::QuantBits::Int4;
    Screener s8(cfg8, rng);
    Screener s4(cfg4, rng);
    EXPECT_GT(s8.parameterBytes(), s4.parameterBytes());
}

TEST(Screener, ParameterBytesMuchSmallerThanClassifier)
{
    // The whole point: screening params ~ 1/32 of the FP32 classifier at
    // scale 0.25 + INT4.
    Rng rng(29);
    ScreenerConfig cfg = config(4096, 128, 0.25);
    Screener s(cfg, rng);
    s.freezeQuantized();
    const size_t classifier_bytes = 4096 * 128 * sizeof(float);
    EXPECT_LT(s.parameterBytes(), classifier_bytes / 16);
}

TEST(Screener, FlopsFormula)
{
    Rng rng(31);
    Screener s(config(256, 32, 0.25), rng);
    const uint64_t expected =
        s.projection().nonZeros() + 2ull * 256 * 8 + 256;
    EXPECT_EQ(s.flopsPerInference(), expected);
}

TEST(Screener, FreezeIdempotentForFp32Config)
{
    Rng rng(37);
    ScreenerConfig cfg = config();
    cfg.quant = tensor::QuantBits::Fp32;
    Screener s(cfg, rng);
    s.freezeQuantized(); // no-op
    EXPECT_FALSE(s.quantizedFrozen());
    tensor::Vector h(32, 0.2f);
    // Fp32 config screens through the float path without freezing.
    const ScreeningResult r = s.screen(h);
    EXPECT_EQ(r.approx_logits.size(), 256u);
}

} // namespace
} // namespace enmc::screening
