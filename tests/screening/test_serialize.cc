/**
 * @file
 * Tests for screener serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "runtime/api.h"
#include "screening/serialize.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::screening {
namespace {

class SerializeTest : public ::testing::Test
{
  protected:
    SerializeTest()
        : model_(makeConfig())
    {
        ScreenerConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        cfg.selection = SelectionMode::Threshold;
        cfg.threshold = 1.25f;
        Rng rng(kSeed);
        screener_ = std::make_unique<Screener>(cfg, rng);
        Rng data = model_.makeRng(1);
        train_ = model_.sampleHiddenBatch(data, 96);
        Trainer trainer(model_.classifier(), *screener_, TrainerConfig{});
        trainer.train(train_, {});
        screener_->freezeQuantized();
        eval_ = model_.sampleHiddenBatch(data, 8);
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 512;
        cfg.hidden = 48;
        return cfg;
    }

    static constexpr uint64_t kSeed = 777;
    workloads::SyntheticModel model_;
    std::unique_ptr<Screener> screener_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> eval_;
};

TEST_F(SerializeTest, RoundTripBitExact)
{
    std::stringstream buf;
    saveScreener(*screener_, kSeed, buf);
    const auto loaded = loadScreener(buf);

    ASSERT_EQ(loaded->categories(), screener_->categories());
    ASSERT_EQ(loaded->reducedDim(), screener_->reducedDim());
    EXPECT_EQ(loaded->config().threshold, screener_->config().threshold);
    EXPECT_EQ(loaded->config().selection, screener_->config().selection);
    EXPECT_TRUE(loaded->quantizedFrozen());

    for (const auto &h : eval_) {
        const auto a = screener_->approximateQuantized(h);
        const auto b = loaded->approximateQuantized(h);
        for (size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i], b[i]) << "logit " << i;
        // Same projection (rebuilt from the seed).
        const auto pa = screener_->project(h);
        const auto pb = loaded->project(h);
        for (size_t i = 0; i < pa.size(); ++i)
            EXPECT_EQ(pa[i], pb[i]);
    }
}

TEST_F(SerializeTest, RoundTripThroughFile)
{
    const std::string path = ::testing::TempDir() + "screener.enmc";
    saveScreenerFile(*screener_, kSeed, path);
    const auto loaded = loadScreenerFile(path);
    EXPECT_EQ(loaded->categories(), 512u);
    const auto a = screener_->screen(eval_[0]);
    const auto b = loaded->screen(eval_[0]);
    EXPECT_EQ(a.candidates, b.candidates);
    std::remove(path.c_str());
}

TEST_F(SerializeTest, BadMagicRejected)
{
    std::stringstream buf;
    buf << "NOTASCRN" << std::string(256, 'x'); // longer than the header
    EXPECT_DEATH((void)loadScreener(buf), "bad magic");
}

TEST_F(SerializeTest, TruncatedPayloadRejected)
{
    std::stringstream buf;
    saveScreener(*screener_, kSeed, buf);
    std::string data = buf.str();
    data.resize(data.size() / 2);
    std::stringstream half(data);
    EXPECT_DEATH((void)loadScreener(half), "truncated");
}

TEST_F(SerializeTest, ApiSaveLoadFlow)
{
    runtime::ClassifierOptions opt;
    opt.candidates = 32;
    opt.seed = 4242;
    runtime::EnmcClassifier clf(model_.classifier(), opt);
    Rng data = model_.makeRng(2);
    clf.calibrate(model_.sampleHiddenBatch(data, 96),
                  model_.sampleHiddenBatch(data, 32));

    const std::string path = ::testing::TempDir() + "clf.enmc";
    clf.save(path);

    runtime::EnmcClassifier fresh(model_.classifier(), opt);
    EXPECT_FALSE(fresh.calibrated());
    fresh.load(path);
    EXPECT_TRUE(fresh.calibrated());

    const auto h = model_.sampleHiddenBatch(data, 2);
    const auto a = clf.forward(h, 3);
    const auto b = fresh.forward(h, 3);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].topk, b[i].topk);
    std::remove(path.c_str());
}

TEST_F(SerializeTest, ApiSaveBeforeCalibratePanics)
{
    runtime::ClassifierOptions opt;
    runtime::EnmcClassifier clf(model_.classifier(), opt);
    EXPECT_DEATH(clf.save("/tmp/never.enmc"), "calibrate");
}

} // namespace
} // namespace enmc::screening
