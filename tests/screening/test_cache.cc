/**
 * @file
 * Property battery for the hot-label candidate cache.
 *
 * The contracts under test, matching the doc header of cache.h:
 *  - counter accounting invariants hold after any lookup/insert sequence
 *    (lookups == hits + misses, hits == validated + rejected,
 *    screenerBypass == validated, fullScreens == misses + rejected);
 *  - eviction is strict LRU (a validated hit refreshes recency);
 *  - capacity 0 disables the cache cleanly (no counters, no entries);
 *  - under a Zipfian query trace the *served* output (probabilities,
 *    top-k, candidates) is bitwise identical cache-on vs cache-off for
 *    every functional-simulation thread count, while the cache actually
 *    hits;
 *  - a hot-swap epoch bump invalidates stale entries (miss, re-insert);
 *  - an absurd validation margin rejects every hit but never corrupts
 *    the served output.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "runtime/api.h"
#include "screening/cache.h"
#include "screening/screener.h"
#include "workloads/synthetic.h"

namespace enmc::screening {
namespace {

class CandidateCacheTest : public ::testing::Test
{
  protected:
    CandidateCacheTest()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 160)),
          val_(model_.sampleHiddenBatch(rng_, 48)),
          pool_(model_.sampleHiddenBatch(rng_, 12))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 1024;
        cfg.hidden = 64;
        return cfg;
    }

    std::unique_ptr<runtime::EnmcClassifier>
    makeClassifier(size_t cache_capacity, float margin = 0.0f,
                   uint64_t sim_threads = 1)
    {
        runtime::ClassifierOptions opt;
        opt.candidates = 48;
        opt.cache.capacity = cache_capacity;
        opt.cache.margin = margin;
        runtime::SystemConfig sys;
        sys.sim_threads = sim_threads;
        auto clf = std::make_unique<runtime::EnmcClassifier>(
            model_.classifier(), opt, sys);
        clf->calibrate(train_, val_);
        return clf;
    }

    /** Deterministic Zipfian index sequence over the query pool. */
    std::vector<size_t>
    zipfTrace(size_t n) const
    {
        Rng rng(7);
        ZipfSampler zipf(pool_.size(), 1.1);
        std::vector<size_t> idx(n);
        for (size_t i = 0; i < n; ++i)
            idx[i] = static_cast<size_t>(zipf(rng));
        return idx;
    }

    /** The cache key sketch for `h` under this classifier's screener. */
    static tensor::QuantizedVector
    sketch(const runtime::EnmcClassifier &clf, const tensor::Vector &h)
    {
        const Screener &scr = clf.screener();
        return tensor::quantize(scr.project(h), scr.config().quant);
    }

    static void
    checkAccounting(CandidateCache &cache)
    {
        const StatGroup &s = cache.stats();
        const uint64_t lookups = s.counter("lookups").value();
        const uint64_t hits = s.counter("hits").value();
        const uint64_t misses = s.counter("misses").value();
        const uint64_t validated = s.counter("validated").value();
        const uint64_t rejected = s.counter("rejected").value();
        const uint64_t bypass = s.counter("screenerBypass").value();
        const uint64_t full = s.counter("fullScreens").value();
        EXPECT_EQ(lookups, hits + misses);
        EXPECT_EQ(hits, validated + rejected);
        EXPECT_EQ(bypass, validated);
        EXPECT_EQ(full, misses + rejected);
        EXPECT_EQ(lookups, bypass + full)
            << "every lookup either bypasses screening or screens fully";
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
    std::vector<tensor::Vector> pool_;
};

TEST_F(CandidateCacheTest, AccountingInvariantsAfterZipfianTraffic)
{
    auto clf = makeClassifier(8);
    for (const size_t q : zipfTrace(96))
        clf->forward({pool_[q]}, 5);

    CandidateCache &cache = clf->cache();
    checkAccounting(cache);
    const StatGroup &s = cache.stats();
    EXPECT_GT(s.counter("lookups").value(), 0u);
    EXPECT_GT(s.counter("hits").value(), 0u)
        << "a Zipfian trace over 12 queries must repeat sketches";
    EXPECT_GT(s.counter("misses").value(), 0u);
    // Margin 0: every bitwise hit validates.
    EXPECT_EQ(s.counter("rejected").value(), 0u);
    // Every miss that ran full screening was inserted (capacity > 0).
    EXPECT_EQ(s.counter("insertions").value(),
              s.counter("misses").value());
    EXPECT_LE(cache.size(), cache.config().capacity);
}

TEST_F(CandidateCacheTest, LruEvictionOrderWithHitRefresh)
{
    auto clf = makeClassifier(1); // classifier only used for its screener
    const Screener &scr = clf->screener();

    CacheConfig cfg;
    cfg.capacity = 2;
    CandidateCache cache(cfg);

    auto entry_for = [&](const tensor::Vector &h) {
        const tensor::Vector z = scr.approximateQuantized(h);
        return std::make_pair(scr.select(z), z);
    };
    auto insert = [&](size_t q) {
        auto [cands, z] = entry_for(pool_[q]);
        cache.insert(sketch(*clf, pool_[q]), 1, std::move(cands),
                     std::move(z));
    };
    auto hit = [&](size_t q) {
        return cache.lookup(sketch(*clf, pool_[q]), 1, scr) != nullptr;
    };

    insert(0);
    insert(1);
    EXPECT_EQ(cache.size(), 2u);
    // Touch 0: it becomes MRU, so inserting 2 must evict 1, not 0.
    EXPECT_TRUE(hit(0));
    insert(2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().counter("evictions").value(), 1u);
    EXPECT_TRUE(hit(0)) << "recently used entry must survive eviction";
    EXPECT_TRUE(hit(2));
    EXPECT_FALSE(hit(1)) << "LRU entry must have been evicted";

    // Recency is now [2, 0] (hits in that order above), so the next
    // insert evicts 0.
    insert(3);
    EXPECT_TRUE(hit(2));
    EXPECT_TRUE(hit(3));
    EXPECT_FALSE(hit(0)) << "0 was LRU after the final hit on 2";
    checkAccounting(cache);
}

TEST_F(CandidateCacheTest, CapacityZeroDisablesCleanly)
{
    auto clf = makeClassifier(1);
    const Screener &scr = clf->screener();

    CacheConfig cfg;
    cfg.capacity = 0;
    CandidateCache cache(cfg);
    EXPECT_FALSE(cache.enabled());

    EXPECT_EQ(cache.lookup(sketch(*clf, pool_[0]), 1, scr), nullptr);
    const tensor::Vector z = scr.approximateQuantized(pool_[0]);
    cache.insert(sketch(*clf, pool_[0]), 1, scr.select(z), z);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(sketch(*clf, pool_[0]), 1, scr), nullptr);

    // A disabled cache records nothing: it is not part of the run.
    const StatGroup &s = cache.stats();
    EXPECT_EQ(s.counter("lookups").value(), 0u);
    EXPECT_EQ(s.counter("insertions").value(), 0u);

    // And a classifier built with capacity 0 serves with zero traffic.
    auto off = makeClassifier(0);
    off->forward({pool_[0], pool_[0]}, 5);
    EXPECT_EQ(off->cache().stats().counter("lookups").value(), 0u);
}

TEST_F(CandidateCacheTest, ZipfianServedOutputIdenticalCacheOnVsOff)
{
    const std::vector<size_t> trace = zipfTrace(96);
    // The ENMC_THREADS axis, exercised in-process: the served bits must
    // not depend on the functional simulation's worker count either way.
    for (const uint64_t threads : {uint64_t{1}, uint64_t{4}, uint64_t{8}}) {
        auto on = makeClassifier(64, 0.0f, threads);
        auto off = makeClassifier(0, 0.0f, threads);

        for (size_t base = 0; base < trace.size(); base += 8) {
            std::vector<tensor::Vector> batch;
            for (size_t i = base; i < base + 8 && i < trace.size(); ++i)
                batch.push_back(pool_[trace[i]]);
            const auto a = on->forward(batch, 5);
            const auto b = off->forward(batch, 5);
            ASSERT_EQ(a.size(), b.size());
            for (size_t i = 0; i < a.size(); ++i) {
                ASSERT_EQ(a[i].probabilities.size(),
                          b[i].probabilities.size());
                ASSERT_EQ(std::memcmp(a[i].probabilities.data(),
                                      b[i].probabilities.data(),
                                      a[i].probabilities.size() *
                                          sizeof(float)),
                          0)
                    << "served probabilities differ at threads=" << threads
                    << " batch base " << base << " item " << i;
                ASSERT_EQ(a[i].topk, b[i].topk);
                ASSERT_EQ(a[i].candidates, b[i].candidates);
                ASSERT_FALSE(b[i].cache_hit);
            }
        }
        EXPECT_GT(on->cache().stats().counter("hits").value(), 0u)
            << "cache-on run never hit at threads=" << threads;
        checkAccounting(on->cache());
    }
}

TEST_F(CandidateCacheTest, EpochBumpInvalidatesStaleEntries)
{
    auto clf = makeClassifier(16);
    // Warm the cache (insert happens at the end of a miss batch, so the
    // hit needs a second forward), then hot-swap: entries tagged epoch 1
    // must miss under epoch 2 and be replaced, never served.
    clf->forward({pool_[0]}, 5);
    clf->forward({pool_[0]}, 5);
    EXPECT_GT(clf->cache().stats().counter("hits").value(), 0u);
    const uint64_t hits_before =
        clf->cache().stats().counter("hits").value();

    const uint64_t epoch = clf->refresh(train_, val_);
    EXPECT_EQ(epoch, 2u);

    const auto out = clf->forward({pool_[0]}, 5);
    EXPECT_EQ(out[0].snapshot_epoch, 2u);
    EXPECT_FALSE(out[0].cache_hit) << "stale epoch-1 entry served";
    EXPECT_EQ(clf->cache().stats().counter("hits").value(), hits_before);

    // The re-inserted entry hits under the new epoch and serves the same
    // bits as a cache-off twin of the refreshed screener.
    const auto again = clf->forward({pool_[0]}, 5);
    EXPECT_TRUE(again[0].cache_hit);
    auto off = makeClassifier(0);
    off->refresh(train_, val_);
    const auto ref = off->forward({pool_[0]}, 5);
    ASSERT_EQ(again[0].probabilities.size(), ref[0].probabilities.size());
    EXPECT_EQ(std::memcmp(again[0].probabilities.data(),
                          ref[0].probabilities.data(),
                          ref[0].probabilities.size() * sizeof(float)),
              0);
    checkAccounting(clf->cache());
}

TEST_F(CandidateCacheTest, HugeMarginRejectsHitsButServesCorrectly)
{
    auto strict = makeClassifier(16, 1e9f);
    auto off = makeClassifier(0);

    for (const size_t q : zipfTrace(32)) {
        const auto a = strict->forward({pool_[q]}, 5);
        const auto b = off->forward({pool_[q]}, 5);
        EXPECT_FALSE(a[0].cache_hit)
            << "no candidate can clear a 1e9 margin";
        ASSERT_EQ(std::memcmp(a[0].probabilities.data(),
                              b[0].probabilities.data(),
                              b[0].probabilities.size() * sizeof(float)),
                  0);
    }
    const StatGroup &s = strict->cache().stats();
    EXPECT_GT(s.counter("rejected").value(), 0u);
    EXPECT_EQ(s.counter("validated").value(), 0u);
    EXPECT_EQ(s.counter("screenerBypass").value(), 0u);
    checkAccounting(strict->cache());
}

TEST(CacheConfigTest, EnvParsingAppliesOverrides)
{
    setenv("ENMC_CACHE_CAPACITY", "128", 1);
    setenv("ENMC_CACHE_MARGIN", "0.5", 1);
    const CacheConfig cfg = cacheConfigFromEnv();
    unsetenv("ENMC_CACHE_CAPACITY");
    unsetenv("ENMC_CACHE_MARGIN");
    EXPECT_EQ(cfg.capacity, 128u);
    EXPECT_FLOAT_EQ(cfg.margin, 0.5f);

    const CacheConfig defaults = cacheConfigFromEnv();
    EXPECT_EQ(defaults.capacity, 0u) << "cache must default off";
    EXPECT_FLOAT_EQ(defaults.margin, 0.0f);
}

} // namespace
} // namespace enmc::screening
