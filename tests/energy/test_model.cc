/**
 * @file
 * Tests for the energy / area / power models (Tables 4, 5; Fig. 14).
 */

#include <gtest/gtest.h>

#include "energy/model.h"

namespace enmc::energy {
namespace {

TEST(Table5, BlockValuesSumToTotals)
{
    // The paper's Table 5 totals: 0.442 mm^2 and 285.4 mW.
    EXPECT_NEAR(enmcLogicArea(), 0.442, 1e-9);
    EXPECT_NEAR(enmcLogicPower(), 285.4, 1e-9);
}

TEST(Table5, SixBlocks)
{
    const auto blocks = enmcLogicBlocks();
    ASSERT_EQ(blocks.size(), 6u);
    EXPECT_EQ(blocks[0].name, "INT4 MAC");
    EXPECT_NEAR(blocks[0].area_mm2, 0.013, 1e-9);
    EXPECT_NEAR(blocks[1].power_mw, 58.0, 1e-9);
}

TEST(Table4, BudgetsComparable)
{
    // All four designs sit at a matched area/power budget.
    const LogicBlock designs[] = {ndaLogic(), chameleonLogic(),
                                  tensorDimmLogic(), enmcLogic()};
    for (const auto &d : designs) {
        EXPECT_GT(d.area_mm2, 0.35) << d.name;
        EXPECT_LT(d.area_mm2, 0.50) << d.name;
        EXPECT_GT(d.power_mw, 240.0) << d.name;
        EXPECT_LT(d.power_mw, 310.0) << d.name;
    }
}

TEST(Table4, PaperValues)
{
    EXPECT_NEAR(ndaLogic().area_mm2, 0.445, 1e-9);
    EXPECT_NEAR(ndaLogic().power_mw, 293.6, 1e-9);
    EXPECT_NEAR(chameleonLogic().area_mm2, 0.398, 1e-9);
    EXPECT_NEAR(tensorDimmLogic().power_mw, 303.5, 1e-9);
}

TEST(Table4, TensorDimmLargeIsScaledUp)
{
    EXPECT_GT(tensorDimmLargeLogic().area_mm2,
              2.0 * tensorDimmLogic().area_mm2);
    EXPECT_GT(tensorDimmLargeLogic().power_mw,
              2.0 * tensorDimmLogic().power_mw);
}

TEST(RankEnergy, ComponentsComputedIndependently)
{
    DramActivity act;
    act.reads = 1000;
    act.writes = 500;
    act.activates = 100;
    act.refreshes = 10;
    act.seconds = 1e-3;
    const EnergyBreakdown e = rankEnergy(act, 285.4);

    DramEnergyParams p;
    EXPECT_NEAR(e.dram_static_j, p.static_w_per_rank * 1e-3, 1e-12);
    EXPECT_NEAR(e.dram_access_j,
                (1000 * p.read_burst_nj + 500 * p.write_burst_nj +
                 100 * p.act_pre_nj + 10 * p.refresh_nj) * 1e-9,
                1e-15);
    EXPECT_NEAR(e.logic_j, 0.2854e-3, 1e-9);
    EXPECT_NEAR(e.total(),
                e.dram_static_j + e.dram_access_j + e.logic_j, 1e-15);
}

TEST(RankEnergy, ZeroActivityOnlyStatic)
{
    DramActivity act;
    act.seconds = 1.0;
    const EnergyBreakdown e = rankEnergy(act, 0.0);
    EXPECT_GT(e.dram_static_j, 0.0);
    EXPECT_EQ(e.dram_access_j, 0.0);
    EXPECT_EQ(e.logic_j, 0.0);
}

TEST(RankEnergy, AccumulateAndScale)
{
    DramActivity act;
    act.reads = 10;
    act.seconds = 1e-6;
    EnergyBreakdown a = rankEnergy(act, 100.0);
    EnergyBreakdown b = a;
    b += a;
    EXPECT_NEAR(b.total(), 2 * a.total(), 1e-15);
    const EnergyBreakdown s = scaleEnergy(a, 64);
    EXPECT_NEAR(s.total(), 64 * a.total(), 1e-12);
}

TEST(RankEnergy, ShorterRuntimeCutsStaticEnergy)
{
    // The Fig. 14 insight: ENMC's speedup directly reduces background
    // (refresh/standby) energy.
    DramActivity slow;
    slow.seconds = 1e-3;
    DramActivity fast = slow;
    fast.seconds = 1e-4;
    EXPECT_NEAR(rankEnergy(slow, 300.0).dram_static_j /
                    rankEnergy(fast, 300.0).dram_static_j,
                10.0, 1e-9);
}

TEST(RankEnergy, AccessEnergyTracksTraffic)
{
    DramActivity small;
    small.reads = 1000;
    small.seconds = 1e-6;
    DramActivity big = small;
    big.reads = 8000;
    EXPECT_NEAR(rankEnergy(big, 0.0).dram_access_j /
                    rankEnergy(small, 0.0).dram_access_j,
                8.0, 1e-9);
}

} // namespace
} // namespace enmc::energy
