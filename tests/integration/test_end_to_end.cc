/**
 * @file
 * Integration tests: the full offline-train -> deploy -> classify flow,
 * and the cross-engine performance relations the paper's evaluation
 * depends on (ENMC > TensorDIMM > CPU, AS > full classification).
 */

#include <gtest/gtest.h>

#include "baselines/fgd.h"
#include "baselines/svd_softmax.h"
#include "nmp/cpu.h"
#include "nmp/engine.h"
#include "runtime/api.h"
#include "runtime/system.h"
#include "screening/metrics.h"
#include "tensor/topk.h"
#include "workloads/registry.h"

namespace enmc {
namespace {

class EndToEnd : public ::testing::Test
{
  protected:
    EndToEnd()
        : model_(makeConfig()), rng_(model_.makeRng(1)),
          train_(model_.sampleHiddenBatch(rng_, 192)),
          val_(model_.sampleHiddenBatch(rng_, 48)),
          eval_(model_.sampleHiddenBatch(rng_, 24))
    {
    }

    static workloads::SyntheticConfig
    makeConfig()
    {
        workloads::SyntheticConfig cfg;
        cfg.categories = 2048;
        cfg.hidden = 64;
        return cfg;
    }

    workloads::SyntheticModel model_;
    Rng rng_;
    std::vector<tensor::Vector> train_;
    std::vector<tensor::Vector> val_;
    std::vector<tensor::Vector> eval_;
};

TEST_F(EndToEnd, TrainDeployClassify)
{
    runtime::ClassifierOptions opt;
    opt.candidates = 64;
    runtime::EnmcClassifier clf(model_.classifier(), opt);
    clf.calibrate(train_, val_);

    const auto approx = clf.forward(eval_, 5);
    const auto exact = clf.forwardFull(eval_, 5);
    double top1 = 0.0, top5 = 0.0;
    for (size_t i = 0; i < eval_.size(); ++i) {
        top1 += (approx[i].topk[0] == exact[i].topk[0]);
        top5 += tensor::recall(approx[i].topk, exact[i].topk);
    }
    // The paper's claim: screening preserves prediction quality.
    EXPECT_GT(top1 / eval_.size(), 0.85);
    EXPECT_GT(top5 / eval_.size(), 0.7);
}

TEST_F(EndToEnd, ScreeningBeatsBaselinesOnQualityPerByte)
{
    // Fig. 11's qualitative claim: at a matched byte budget AS reaches
    // higher agreement than SVD-softmax previews and FGD search.
    runtime::ClassifierOptions opt;
    opt.candidates = 32;
    runtime::EnmcClassifier clf(model_.classifier(), opt);
    clf.calibrate(train_, val_);
    screening::Pipeline as_pipe(model_.classifier(), clf.screener());
    const auto as_q = screening::evaluateQuality(as_pipe, eval_, 5);

    baselines::SvdSoftmaxConfig svd_cfg;
    svd_cfg.window = 4; // byte-comparable preview: 4 FP32 cols vs 16 INT4
    svd_cfg.top_n = 32;
    baselines::SvdSoftmax svd(model_.classifier(), svd_cfg);
    double svd_top1 = 0.0;
    uint64_t svd_bytes = svd.inferenceCost().bytes_read;
    for (const auto &h : eval_) {
        const auto r = svd.infer(h);
        svd_top1 += (tensor::argmax(r.logits) ==
                     tensor::argmax(model_.classifier().logits(h)));
    }
    svd_top1 /= eval_.size();

    // AS bytes at this scale.
    const uint64_t as_bytes =
        as_pipe.screeningCost().bytes_read +
        as_pipe.candidateCost(32).bytes_read;
    EXPECT_LT(as_bytes, svd_bytes * 2);
    EXPECT_GE(as_q.top1_agreement + 0.10, svd_top1);
}

TEST_F(EndToEnd, CostModelSpeedupInPaperRange)
{
    runtime::ClassifierOptions opt;
    opt.candidates = 64; // ~3% of 2048, XMLCNN-like regime
    runtime::EnmcClassifier clf(model_.classifier(), opt);
    clf.calibrate(train_, val_);
    screening::Pipeline pipe(model_.classifier(), clf.screener());
    const auto q = screening::evaluateQuality(pipe, eval_, 5);
    // 1 / (1/32 + m_eff/l); the tuned threshold over-selects vs the 64
    // target (quantile tuning), landing m_eff/l around 10-20%.
    EXPECT_GT(q.cost_speedup, 3.5);
    EXPECT_LT(q.cost_speedup, 25.0);
}

/** Cross-engine timing relations on a full-scale workload. */
class EngineComparison : public ::testing::Test
{
  protected:
    arch::RankTask
    rankTask(uint64_t batch)
    {
        const workloads::Workload w =
            workloads::findWorkload("Transformer-W268K");
        runtime::JobSpec spec;
        spec.categories = w.categories;
        spec.hidden = w.hidden;
        spec.reduced = w.hidden / 4;
        spec.batch = batch;
        spec.candidates = w.candidates;
        runtime::EnmcSystem sys{runtime::SystemConfig{}};
        return sys.makeRankTask(spec);
    }
};

TEST_F(EngineComparison, EnmcFasterThanAllNmpBaselines)
{
    const arch::RankTask task = rankTask(1);
    runtime::EnmcSystem sys{runtime::SystemConfig{}};
    runtime::JobSpec spec;
    spec.categories = 267744;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.batch = 1;
    spec.candidates = 34000;
    const auto enmc_time = sys.runTiming(spec);

    const dram::Organization org =
        dram::Organization::paperTable3().singleRankView();
    for (auto cfg : {nmp::EngineConfig::nda(),
                     nmp::EngineConfig::chameleon(),
                     nmp::EngineConfig::tensorDimm()}) {
        nmp::NmpEngine engine(cfg, org, dram::Timing::ddr4_2400());
        const auto r = engine.run(task);
        EXPECT_GT(r.cycles, enmc_time.rank_cycles)
            << nmp::engineKindName(cfg.kind);
    }
}

TEST_F(EngineComparison, NmpBaselinesBeatCpu)
{
    // Fig. 13: the NMP baselines are ~10-20x over the CPU baseline
    // (aggregate rank bandwidth), even before ENMC's heterogeneity.
    const arch::RankTask task = rankTask(1);
    const dram::Organization org =
        dram::Organization::paperTable3().singleRankView();
    nmp::NmpEngine engine(nmp::EngineConfig::tensorDimm(), org,
                          dram::Timing::ddr4_2400());
    const auto r = engine.run(task);
    const double nmp_seconds =
        cyclesToSeconds(r.cycles, dram::Timing::ddr4_2400().freq_hz);

    nmp::CpuConfig cpu;
    const double cpu_seconds =
        nmp::cpuFullClassificationTime(cpu, 267744, 512, 1);
    EXPECT_GT(cpu_seconds / nmp_seconds, 3.0);
}

TEST_F(EngineComparison, EnmcAdvantageGrowsWithScale)
{
    // Fig. 15: ENMC's lead over TensorDIMM widens with category count.
    runtime::EnmcSystem sys{runtime::SystemConfig{}};
    const dram::Organization org =
        dram::Organization::paperTable3().singleRankView();

    auto ratio_at = [&](uint64_t l) {
        runtime::JobSpec spec;
        spec.categories = l;
        spec.hidden = 512;
        spec.reduced = 128;
        spec.batch = 1;
        spec.candidates = l / 50;
        const auto enmc_r = sys.runTiming(spec);
        nmp::NmpEngine engine(nmp::EngineConfig::tensorDimm(), org,
                              dram::Timing::ddr4_2400());
        const auto base_r = engine.run(sys.makeRankTask(spec));
        return static_cast<double>(base_r.cycles) / enmc_r.rank_cycles;
    };
    const double small = ratio_at(670'000);
    const double large = ratio_at(4'000'000);
    EXPECT_GT(large, small * 0.95);
    EXPECT_GT(large, 1.5);
}

} // namespace
} // namespace enmc
