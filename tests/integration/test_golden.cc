/**
 * @file
 * Golden regression tests for the paper figures: a fixed-seed,
 * reduced-scale slice of Fig. 11 (quality vs speedup) and Fig. 13
 * (backend speedups over the CPU baseline) is recomputed and compared
 * against checked-in JSON. Any change to the numerical pipeline — kernel
 * dispatch, screener training, timing model — that moves a figure shows
 * up here as a diff against the golden file, not as a silent drift.
 *
 * Regenerate after an *intentional* change with:
 *   ENMC_REGEN_GOLDEN=1 ./tests/test_integration \
 *       --gtest_filter='Golden*'
 * and commit the updated JSON under tests/golden/.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/svd_softmax.h"
#include "common/logging.h"
#include "runtime/backend.h"
#include "screening/pipeline.h"
#include "screening/trainer.h"
#include "tensor/ops.h"
#include "tensor/topk.h"
#include "workloads/registry.h"

#ifndef ENMC_GOLDEN_DIR
#error "ENMC_GOLDEN_DIR must point at tests/golden"
#endif

namespace enmc {
namespace {

using GoldenMap = std::map<std::string, double>;

std::string
goldenPath(const std::string &file)
{
    const char *env = std::getenv("ENMC_GOLDEN_DIR");
    return std::string(env != nullptr ? env : ENMC_GOLDEN_DIR) + "/" +
           file;
}

bool
regenRequested()
{
    const char *env = std::getenv("ENMC_REGEN_GOLDEN");
    return env != nullptr && std::strcmp(env, "1") == 0;
}

/** Flat {"key": number, ...} JSON — all this harness needs. */
GoldenMap
loadGolden(const std::string &path)
{
    GoldenMap out;
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return out;
    std::string text;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
        const size_t end = text.find('"', pos + 1);
        if (end == std::string::npos)
            break;
        const std::string key = text.substr(pos + 1, end - pos - 1);
        const size_t colon = text.find(':', end);
        if (colon == std::string::npos)
            break;
        out[key] = std::strtod(text.c_str() + colon + 1, nullptr);
        pos = colon + 1;
    }
    return out;
}

void
writeGolden(const std::string &path, const GoldenMap &values)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << "cannot write " << path;
    std::fprintf(f, "{\n");
    size_t i = 0;
    for (const auto &[key, value] : values)
        std::fprintf(f, "  \"%s\": %.17g%s\n", key.c_str(), value,
                     ++i < values.size() ? "," : "");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

/** Regenerate (and skip) under ENMC_REGEN_GOLDEN=1, else compare. */
void
compareOrRegen(const std::string &file, const GoldenMap &computed)
{
    const std::string path = goldenPath(file);
    if (regenRequested()) {
        writeGolden(path, computed);
        GTEST_SKIP() << "regenerated " << path;
    }

    const GoldenMap golden = loadGolden(path);
    ASSERT_FALSE(golden.empty())
        << path << " missing or empty; regenerate with ENMC_REGEN_GOLDEN=1";
    EXPECT_EQ(golden.size(), computed.size());
    for (const auto &[key, expected] : golden) {
        const auto it = computed.find(key);
        ASSERT_NE(it, computed.end()) << "golden key gone: " << key;
        // %.17g round-trips doubles exactly; the slack only forgives the
        // final-digit wobble of strtod round-tripping, never real drift.
        const double tol =
            1e-12 * std::max(1.0, std::fabs(expected));
        EXPECT_NEAR(it->second, expected, tol) << key;
    }
    for (const auto &[key, value] : computed) {
        (void)value;
        EXPECT_TRUE(golden.count(key)) << "new key not in golden: " << key
                                       << " (regenerate)";
    }
}

/**
 * Fixed-seed reduced slice of Fig. 11: AS and SVD-softmax quality on the
 * first Table 2 workload at functional scale, plus the analytic
 * full-scale speedups the figure pairs them with.
 */
TEST(Golden, Fig11QualitySpeedup)
{
    const workloads::Workload w = workloads::table2Workloads().front();
    workloads::SyntheticModel model(w.functionalConfig());
    Rng rng = model.makeRng(1);
    const auto train = model.sampleHiddenBatch(rng, 96);
    const auto eval = model.sampleHiddenBatch(rng, 24);
    const size_t l_f = model.classifier().categories();
    const size_t d_f = model.classifier().hidden();

    auto quality = [&](const std::function<tensor::Vector(
                           const tensor::Vector &)> &approx,
                       const char *prefix, GoldenMap &out) {
        double top1 = 0.0, dist = 0.0;
        for (const auto &h : eval) {
            const auto ref = model.classifier().logits(h);
            const auto got = approx(h);
            top1 += (tensor::argmax(got) == tensor::argmax(ref));
            const auto p_ref = tensor::softmax(ref);
            const auto p_got = tensor::softmax(got);
            double tv = 0.0;
            for (size_t i = 0; i < p_ref.size(); ++i)
                tv += std::fabs(p_ref[i] - p_got[i]);
            dist += 1.0 - 0.5 * tv;
        }
        out[std::string(prefix) + "_top1"] = top1 / eval.size();
        out[std::string(prefix) + "_dist"] = dist / eval.size();
    };

    GoldenMap golden;

    screening::ScreenerConfig scfg;
    scfg.categories = l_f;
    scfg.hidden = d_f;
    scfg.reduction_scale = 0.25;
    Rng srng(42);
    screening::Screener screener(scfg, srng);
    screening::Trainer trainer(model.classifier(), screener,
                               screening::TrainerConfig{});
    trainer.train(train, {});
    screener.freezeQuantized();

    for (const double frac : {0.01, 0.05}) {
        const size_t m =
            std::max<size_t>(1, static_cast<size_t>(frac * l_f));
        screener.setSelection(screening::SelectionMode::TopM, m, 0.0f);
        screening::Pipeline pipe(model.classifier(), screener);
        const std::string prefix =
            "as_m" + std::to_string(static_cast<int>(frac * 1000));
        quality([&](const tensor::Vector &h) { return pipe.infer(h).logits; },
                prefix.c_str(), golden);
        // Fig. 11's x axis: analytic full-scale speedup at this fraction.
        const double l = static_cast<double>(w.categories);
        const double d = static_cast<double>(w.hidden);
        const double k = d / 4.0;
        golden[prefix + "_speedup"] =
            (l * d * 4.0) /
            (l * k * 0.5 + l * 4.0 + k * d * 0.25 + frac * l * d * 4.0);
    }

    baselines::SvdSoftmaxConfig vcfg;
    vcfg.window = std::max<size_t>(1, d_f / 8);
    vcfg.top_n = std::max<size_t>(1, l_f / 40);
    baselines::SvdSoftmax svd(model.classifier(), vcfg);
    quality([&](const tensor::Vector &h) { return svd.infer(h).logits; },
            "svd_w8", golden);

    compareOrRegen("fig11_golden.json", golden);
}

/**
 * Fixed-seed slice of Fig. 13: backend speedups over the CPU
 * full-classification baseline for the first two Table 2 workloads at
 * batch 1 and 4, resolved through the backend registry exactly as the
 * bench does.
 */
TEST(Golden, Fig13BackendSpeedups)
{
    const auto table2 = workloads::table2Workloads();
    const auto cpu_full = runtime::createBackend("cpu-full");
    const std::vector<std::string> names = {"cpu", "nda", "chameleon",
                                            "tensordimm", "enmc"};

    GoldenMap golden;
    for (size_t wi = 0; wi < 2; ++wi) {
        const workloads::Workload &w = table2[wi];
        for (const uint64_t batch : {1ull, 4ull}) {
            runtime::JobSpec spec;
            spec.categories = w.categories;
            spec.hidden = w.hidden;
            spec.reduced = std::max<uint64_t>(1, w.hidden / 4);
            spec.batch = batch;
            spec.candidates = w.candidates;
            spec.sigmoid =
                w.normalization == nn::Normalization::Sigmoid;
            runtime::JobSpec enmc_spec = spec;
            enmc_spec.candidates = w.nmpCandidates();

            const double base = cpu_full->runJob(spec).seconds;
            for (const auto &name : names) {
                const auto backend = runtime::createBackend(name);
                const double t =
                    backend->runJob(name == "enmc" ? enmc_spec : spec)
                        .seconds;
                golden["w" + std::to_string(wi) + "_b" +
                       std::to_string(batch) + "_" + name] = base / t;
            }
        }
    }

    compareOrRegen("fig13_golden.json", golden);
}

} // namespace
} // namespace enmc
