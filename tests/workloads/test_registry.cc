/**
 * @file
 * Tests for the workload registry (Table 2) and the Fig. 4 breakdown.
 */

#include <gtest/gtest.h>

#include "workloads/breakdown.h"
#include "workloads/registry.h"

namespace enmc::workloads {
namespace {

TEST(Registry, Table2RowsMatchPaper)
{
    const auto t2 = table2Workloads();
    ASSERT_EQ(t2.size(), 4u);
    EXPECT_EQ(t2[0].abbr, "LSTM-W33K");
    EXPECT_EQ(t2[0].categories, 33278u);
    EXPECT_EQ(t2[0].hidden, 1500u);
    EXPECT_EQ(t2[1].abbr, "Transformer-W268K");
    EXPECT_EQ(t2[1].categories, 267744u);
    EXPECT_EQ(t2[1].hidden, 512u);
    EXPECT_EQ(t2[2].abbr, "GNMT-E32K");
    EXPECT_EQ(t2[2].categories, 32317u);
    EXPECT_EQ(t2[2].hidden, 1024u);
    EXPECT_EQ(t2[3].abbr, "XMLCNN-670K");
    EXPECT_EQ(t2[3].categories, 670091u);
    EXPECT_EQ(t2[3].normalization, nn::Normalization::Sigmoid);
}

TEST(Registry, ScalabilityDatasets)
{
    const auto s = scalabilityWorkloads();
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0].abbr, "S1M");
    EXPECT_EQ(s[0].categories, 1'000'000u);
    EXPECT_EQ(s[1].categories, 10'000'000u);
    EXPECT_EQ(s[2].categories, 100'000'000u);
}

TEST(Registry, FindByAbbreviation)
{
    const Workload w = findWorkload("GNMT-E32K");
    EXPECT_EQ(w.categories, 32317u);
}

TEST(RegistryDeathTest, UnknownWorkloadFatal)
{
    EXPECT_EXIT((void)findWorkload("nope"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

TEST(Registry, ClassifierBytesFormula)
{
    const Workload w = findWorkload("Transformer-W268K");
    EXPECT_EQ(w.classifierBytes(),
              267744ull * 512 * 4 + 267744ull * 4);
}

TEST(Registry, S100MClassifierNeedsPooledMemory)
{
    // The paper's motivation: ~190 GB at 100M categories, d = 512.
    const Workload w = findWorkload("S100M");
    EXPECT_GT(w.classifierBytes(), 190ull * 1000 * 1000 * 1000);
}

TEST(Registry, FunctionalConfigInheritsNormalization)
{
    const Workload w = findWorkload("XMLCNN-670K");
    const SyntheticConfig cfg = w.functionalConfig();
    EXPECT_EQ(cfg.normalization, nn::Normalization::Sigmoid);
    EXPECT_EQ(cfg.categories, w.functional_categories);
}

TEST(Breakdown, SharesBetweenZeroAndOne)
{
    for (const auto &w : allWorkloads()) {
        const Breakdown b = computeBreakdown(w);
        EXPECT_GT(b.paramShare(), 0.0) << w.abbr;
        EXPECT_LT(b.paramShare(), 1.0) << w.abbr;
        EXPECT_GT(b.flopShare(), 0.0) << w.abbr;
        EXPECT_LT(b.flopShare(), 1.0) << w.abbr;
    }
}

TEST(Breakdown, ClassificationDominatesLargeCategoryWorkloads)
{
    // Fig. 4: classification becomes the bottleneck as categories scale.
    const Breakdown xml = computeBreakdown(findWorkload("XMLCNN-670K"));
    EXPECT_GT(xml.paramShare(), 0.85);
    const Breakdown s100m = computeBreakdown(findWorkload("S100M"));
    EXPECT_GT(s100m.paramShare(), 0.99);
}

TEST(Breakdown, ClassificationShareGrowsWithCategories)
{
    const Breakdown s1 = computeBreakdown(findWorkload("S1M"));
    const Breakdown s100 = computeBreakdown(findWorkload("S100M"));
    EXPECT_GT(s100.paramShare(), s1.paramShare());
    EXPECT_GT(s100.flopShare(), s1.flopShare());
}

TEST(Breakdown, NlpWorkloadsHaveSubstantialClassifierShare)
{
    // Fig. 4: "For the three NLP tasks, classifiers consume a significant
    // amount of parameters and operations."
    for (const char *abbr :
         {"LSTM-W33K", "Transformer-W268K", "GNMT-E32K"}) {
        const Breakdown b = computeBreakdown(findWorkload(abbr));
        EXPECT_GT(b.paramShare(), 0.1) << abbr;
    }
}

} // namespace
} // namespace enmc::workloads

namespace enmc::workloads {
namespace {

/**
 * The registry's candidate budgets are chosen so the algorithmic cost
 * model reproduces the speedups the paper quotes for Fig. 11: speedup =
 * 1 / (screening-fraction + m/l) with INT4 screening at reduction 0.25
 * costing 1/32 (the paper's stated 3.1% overhead).
 */
TEST(Registry, CandidateBudgetsReproducePaperSpeedups)
{
    struct Expect
    {
        const char *abbr;
        double speedup;
    };
    const Expect expects[] = {
        {"LSTM-W33K", 5.7},       // Fig. 11(b)
        {"Transformer-W268K", 6.3}, // Fig. 11(c)
        {"GNMT-E32K", 11.8},      // Fig. 11(a)
        {"XMLCNN-670K", 17.4},    // Fig. 11(d)
    };
    for (const auto &e : expects) {
        const Workload w = findWorkload(e.abbr);
        const double screen_fraction = 1.0 / 32.0;
        const double m_over_l =
            static_cast<double>(w.candidates) / w.categories;
        const double speedup = 1.0 / (screen_fraction + m_over_l);
        EXPECT_NEAR(speedup, e.speedup, e.speedup * 0.08) << e.abbr;
    }
}

TEST(Registry, ScreeningOverheadMatchesPaperThreePercent)
{
    // "We set the overhead of Approximate Screening to be 3.1% of full
    // classification" == INT4 (1/8 byte ratio) x 0.25 reduction = 1/32.
    const double overhead = (1.0 / 8.0) * 0.25;
    EXPECT_NEAR(overhead, 0.031, 0.001);
}

TEST(Registry, NmpBudgetTightens50xForRecommendation)
{
    const Workload xml = findWorkload("XMLCNN-670K");
    EXPECT_NEAR(static_cast<double>(xml.candidates) / xml.nmpCandidates(),
                50.0, 0.5);
    const Workload lstm = findWorkload("LSTM-W33K");
    EXPECT_EQ(lstm.nmpCandidates(), lstm.candidates); // NLP rows unchanged
}

} // namespace
} // namespace enmc::workloads
