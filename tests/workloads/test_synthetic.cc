/**
 * @file
 * Tests for the synthetic XC model generator.
 */

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/svd.h"
#include "tensor/topk.h"
#include "workloads/synthetic.h"

namespace enmc::workloads {
namespace {

SyntheticConfig
config(size_t l = 512, size_t d = 32)
{
    SyntheticConfig cfg;
    cfg.categories = l;
    cfg.hidden = d;
    return cfg;
}

TEST(Synthetic, ClassifierDimensions)
{
    SyntheticModel model(config());
    EXPECT_EQ(model.classifier().categories(), 512u);
    EXPECT_EQ(model.classifier().hidden(), 32u);
}

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticModel a(config()), b(config());
    EXPECT_EQ(a.classifier().weights()(3, 7), b.classifier().weights()(3, 7));
    Rng r1 = a.makeRng(0), r2 = b.makeRng(0);
    const auto h1 = a.sampleHidden(r1);
    const auto h2 = b.sampleHidden(r2);
    for (size_t i = 0; i < h1.size(); ++i)
        EXPECT_FLOAT_EQ(h1[i], h2[i]);
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    SyntheticConfig c1 = config();
    SyntheticConfig c2 = config();
    c2.seed = 777;
    SyntheticModel a(c1), b(c2);
    EXPECT_NE(a.classifier().weights()(0, 0), b.classifier().weights()(0, 0));
}

TEST(Synthetic, TrueCategoryHasHighLogit)
{
    SyntheticModel model(config());
    Rng rng = model.makeRng(2);
    size_t hits = 0;
    const int n = 50;
    for (int i = 0; i < n; ++i) {
        uint64_t truth = 0;
        const auto h = model.sampleHidden(rng, &truth);
        const auto z = model.classifier().logits(h);
        const auto top = tensor::topkIndices(z, 10);
        for (uint32_t t : top)
            if (t == truth) {
                ++hits;
                break;
            }
    }
    // The SNR default puts the true category in the top-10 most of the
    // time — the regime real trained classifiers operate in.
    EXPECT_GT(hits, n / 2);
}

TEST(Synthetic, HigherSnrSharperLogits)
{
    // The signal scales every correlated logit; what SNR controls is the
    // margin of the true category over the noise floor.
    SyntheticConfig weak = config();
    weak.sample_snr = 0.5;
    SyntheticConfig strong = config();
    strong.sample_snr = 8.0;
    SyntheticModel wm(weak), sm(strong);
    auto true_percentile = [](const SyntheticModel &m) {
        Rng rng = m.makeRng(3);
        double pct = 0.0;
        for (int i = 0; i < 40; ++i) {
            uint64_t truth = 0;
            const auto h = m.sampleHidden(rng, &truth);
            const auto z = m.classifier().logits(h);
            size_t below = 0;
            for (float v : z)
                below += (v < z[truth]);
            pct += static_cast<double>(below) / z.size();
        }
        return pct / 40.0;
    };
    EXPECT_GT(true_percentile(sm), true_percentile(wm));
}

TEST(Synthetic, SpectrumDecays)
{
    // The structured weight matrix must have a decaying singular spectrum
    // (the property AS and SVD-softmax both rely on).
    SyntheticConfig cfg = config(256, 24);
    cfg.spectrum_decay = 1.0;
    cfg.residual_noise = 0.01;
    SyntheticModel model(cfg);
    const auto svd = tensor::thinSvd(model.classifier().weights());
    EXPECT_GT(svd.sigma[0], 3.0f * svd.sigma[12]);
}

TEST(Synthetic, FlatterSpectrumWithLowerDecay)
{
    SyntheticConfig steep = config(256, 24);
    steep.spectrum_decay = 1.2;
    steep.residual_noise = 0.01;
    SyntheticConfig flat = steep;
    flat.spectrum_decay = 0.2;
    const auto s1 = tensor::thinSvd(
        SyntheticModel(steep).classifier().weights());
    const auto s2 = tensor::thinSvd(
        SyntheticModel(flat).classifier().weights());
    const double ratio1 = s1.sigma[0] / s1.sigma[12];
    const double ratio2 = s2.sigma[0] / s2.sigma[12];
    EXPECT_GT(ratio1, ratio2);
}

TEST(Synthetic, BatchSampling)
{
    SyntheticModel model(config());
    Rng rng = model.makeRng(4);
    const auto batch = model.sampleHiddenBatch(rng, 7);
    EXPECT_EQ(batch.size(), 7u);
    for (const auto &h : batch)
        EXPECT_EQ(h.size(), 32u);
}

TEST(Synthetic, SigmoidNormalizationPropagates)
{
    SyntheticConfig cfg = config();
    cfg.normalization = nn::Normalization::Sigmoid;
    SyntheticModel model(cfg);
    EXPECT_EQ(model.classifier().normalization(),
              nn::Normalization::Sigmoid);
}

TEST(SyntheticDeathTest, TooSmallRejected)
{
    SyntheticConfig cfg;
    cfg.categories = 1;
    EXPECT_DEATH(SyntheticModel{cfg}, "too small");
}

} // namespace
} // namespace enmc::workloads
