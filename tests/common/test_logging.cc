/**
 * @file
 * Tests for logging / error reporting.
 */

#include <gtest/gtest.h>

#include "common/logging.h"

namespace enmc {
namespace {

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(ENMC_PANIC("boom ", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(ENMC_FATAL("bad config ", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LoggingDeathTest, AssertFiresOnFalse)
{
    EXPECT_DEATH(ENMC_ASSERT(1 == 2, "math broke"),
                 "assertion failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    ENMC_ASSERT(1 + 1 == 2, "never");
    SUCCEED();
}

TEST(Logging, WarnRespectsLevel)
{
    // warn()/inform() must not crash at any verbosity.
    Logger::instance().setLevel(LogLevel::Silent);
    warn("silenced");
    inform("silenced");
    Logger::instance().setLevel(LogLevel::Debug);
    warn("audible ", 1);
    inform("audible ", 2);
    Logger::instance().setLevel(LogLevel::Warn);
    SUCCEED();
}

TEST(Logging, LevelAccessor)
{
    Logger::instance().setLevel(LogLevel::Inform);
    EXPECT_EQ(Logger::instance().level(), LogLevel::Inform);
    Logger::instance().setLevel(LogLevel::Warn);
}

} // namespace
} // namespace enmc
