/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

namespace enmc {
namespace {

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(ScalarStat, SingleNegativeSample)
{
    ScalarStat s;
    s.sample(-5.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), -5.0);
}

TEST(Histogram, BinsAndBounds)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(0.5);   // bin 0
    h.sample(2.0);   // bin 1
    h.sample(9.99);  // bin 4
    h.sample(-1.0);  // underflow
    h.sample(10.0);  // overflow (hi is exclusive)
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.binLo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHi(1), 4.0);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 2);
    h.sample(0.3);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bin(0), 0u);
}

TEST(StatGroup, RegisterAndLookup)
{
    StatGroup g("unit");
    Counter &c = g.addCounter("events", "things that happened");
    ++c;
    ++c;
    EXPECT_EQ(g.counter("events").value(), 2u);
    EXPECT_TRUE(g.hasCounter("events"));
    EXPECT_FALSE(g.hasCounter("missing"));
}

TEST(StatGroup, DuplicateRegistrationReturnsSameStat)
{
    StatGroup g("unit");
    Counter &a = g.addCounter("x", "first");
    Counter &b = g.addCounter("x", "second");
    EXPECT_EQ(&a, &b);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("mem");
    ++g.addCounter("reads", "read count");
    g.addScalar("lat", "latency").sample(7.0);
    std::ostringstream oss;
    g.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("mem.reads"), std::string::npos);
    EXPECT_NE(out.find("read count"), std::string::npos);
    EXPECT_NE(out.find("mem.lat"), std::string::npos);
}

TEST(StatGroup, ResetClearsAll)
{
    StatGroup g("g");
    ++g.addCounter("c", "");
    g.addScalar("s", "").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counter("c").value(), 0u);
    EXPECT_EQ(g.scalar("s").count(), 0u);
}

TEST(StatGroupDeathTest, UnknownCounterPanics)
{
    StatGroup g("g");
    EXPECT_DEATH((void)g.counter("nope"), "unknown counter");
}

} // namespace
} // namespace enmc
