/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

namespace enmc {
namespace {

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(ScalarStat, SingleNegativeSample)
{
    ScalarStat s;
    s.sample(-5.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), -5.0);
}

TEST(Histogram, BinsAndBounds)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(0.5);   // bin 0
    h.sample(2.0);   // bin 1
    h.sample(9.99);  // bin 4
    h.sample(-1.0);  // underflow
    h.sample(10.0);  // overflow (hi is exclusive)
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.binLo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHi(1), 4.0);
}

TEST(Histogram, Reset)
{
    Histogram h(0.0, 1.0, 2);
    h.sample(0.3);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bin(0), 0u);
}

TEST(Histogram, LastBinHiIsExactlyHi)
{
    // binHi(numBins()-1) must return hi exactly — not lo + n*width, which
    // floating point can place one ulp off.
    Histogram h(0.0, 0.3, 3); // width 0.1 is not exact in binary
    EXPECT_EQ(h.binHi(h.numBins() - 1), 0.3);
    Histogram h2(1.0, 256.0, 7);
    EXPECT_EQ(h2.binHi(h2.numBins() - 1), 256.0);
}

TEST(Histogram, ExactHiLandsInOverflow)
{
    // The range is half-open: [lo, hi). v == hi is out of range.
    Histogram h(0.0, 10.0, 5);
    h.sample(10.0);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bin(4), 0u);
}

TEST(Histogram, BoundarySamplesRespectBinEdges)
{
    // (v - lo) / width on an exact bin edge can round to either side;
    // the selected bin must still satisfy binLo(i) <= v < binHi(i).
    // 0.1 * k edges are the classic trap (none are exact in binary).
    Histogram h(0.0, 1.0, 10);
    for (int k = 0; k < 10; ++k) {
        const double v = k * 0.1;
        Histogram probe(0.0, 1.0, 10);
        probe.sample(v);
        // find the bin it landed in
        size_t idx = probe.numBins();
        for (size_t i = 0; i < probe.numBins(); ++i) {
            if (probe.bin(i) == 1) {
                idx = i;
                break;
            }
        }
        ASSERT_LT(idx, probe.numBins()) << "v=" << v << " not binned";
        EXPECT_LE(probe.binLo(idx), v) << "v=" << v;
        EXPECT_LT(v, probe.binHi(idx)) << "v=" << v;
    }
    // A negative-lo range exercises edges on both sides of zero.
    for (int k = -5; k <= 4; ++k) {
        const double v = k * 0.3;
        Histogram probe(-1.5, 1.5, 10);
        probe.sample(v);
        size_t idx = probe.numBins();
        for (size_t i = 0; i < probe.numBins(); ++i) {
            if (probe.bin(i) == 1) {
                idx = i;
                break;
            }
        }
        ASSERT_LT(idx, probe.numBins()) << "v=" << v << " not binned";
        EXPECT_LE(probe.binLo(idx), v) << "v=" << v;
        EXPECT_LT(v, probe.binHi(idx)) << "v=" << v;
    }
}

TEST(Histogram, MergeAddsBinwise)
{
    Histogram a(0.0, 10.0, 5);
    Histogram b(0.0, 10.0, 5);
    a.sample(1.0);
    b.sample(1.5);
    b.sample(9.0);
    b.sample(-2.0);
    b.sample(11.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.bin(0), 2u);
    EXPECT_EQ(a.bin(4), 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
}

TEST(StatGroup, RegisterAndLookup)
{
    StatGroup g("unit");
    Counter &c = g.addCounter("events", "things that happened");
    ++c;
    ++c;
    EXPECT_EQ(g.counter("events").value(), 2u);
    EXPECT_TRUE(g.hasCounter("events"));
    EXPECT_FALSE(g.hasCounter("missing"));
}

TEST(StatGroupDeathTest, DuplicateCounterRegistrationPanics)
{
    // Silent dedupe used to hand the second caller the first stat (and
    // drop its description) — two components aggregating into one counter
    // without anyone noticing. Now it's an assertion failure.
    StatGroup g("unit");
    g.addCounter("x", "first");
    EXPECT_DEATH(g.addCounter("x", "second"), "duplicate");
}

TEST(StatGroupDeathTest, DuplicateScalarRegistrationPanics)
{
    StatGroup g("unit");
    g.addScalar("s", "first");
    EXPECT_DEATH(g.addScalar("s", "second"), "duplicate");
}

TEST(StatGroupDeathTest, DuplicateHistogramRegistrationPanics)
{
    StatGroup g("unit");
    g.addHistogram("h", "first", 0.0, 1.0, 4);
    EXPECT_DEATH(g.addHistogram("h", "second", 0.0, 1.0, 4), "duplicate");
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("mem");
    ++g.addCounter("reads", "read count");
    g.addScalar("lat", "latency").sample(7.0);
    std::ostringstream oss;
    g.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("mem.reads"), std::string::npos);
    EXPECT_NE(out.find("read count"), std::string::npos);
    EXPECT_NE(out.find("mem.lat"), std::string::npos);
}

TEST(StatGroup, ResetClearsAll)
{
    StatGroup g("g");
    ++g.addCounter("c", "");
    g.addScalar("s", "").sample(1.0);
    g.reset();
    EXPECT_EQ(g.counter("c").value(), 0u);
    EXPECT_EQ(g.scalar("s").count(), 0u);
}

TEST(StatGroupDeathTest, UnknownCounterPanics)
{
    StatGroup g("g");
    EXPECT_DEATH((void)g.counter("nope"), "unknown counter");
}

TEST(StatGroup, HistogramRegistrationAndDump)
{
    StatGroup g("mem");
    Histogram &h = g.addHistogram("lat", "latency dist", 0.0, 8.0, 4);
    h.sample(1.0);
    h.sample(5.0);
    EXPECT_TRUE(g.hasHistogram("lat"));
    EXPECT_EQ(g.histogram("lat").total(), 2u);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("mem.lat"), std::string::npos);
}

TEST(StatGroup, MergeFromAccumulatesAndCreates)
{
    StatGroup a("g");
    StatGroup b("g");
    a.addCounter("c", "") += 2;
    b.addCounter("c", "") += 3;
    b.addScalar("s", "only in b").sample(4.0);
    b.addHistogram("h", "", 0.0, 1.0, 2).sample(0.25);
    a.mergeFrom(b);
    EXPECT_EQ(a.counter("c").value(), 5u);
    EXPECT_EQ(a.scalar("s").count(), 1u);
    EXPECT_EQ(a.histogram("h").bin(0), 1u);
}

} // namespace
} // namespace enmc
