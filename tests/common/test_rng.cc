/**
 * @file
 * Tests for the deterministic RNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"

namespace enmc {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanAndRange)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform(2.0, 4.0);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(5);
    std::map<int64_t, int> counts;
    for (int i = 0; i < 6000; ++i)
        ++counts[rng.uniformInt(-2, 3)];
    EXPECT_EQ(counts.size(), 6u); // all of {-2..3} hit
    for (const auto &[v, c] : counts) {
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 3);
        EXPECT_GT(c, 700); // roughly uniform
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0, 0.5);
    EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, ProjectionEntryDistribution)
{
    // Achlioptas: P(+1) = P(-1) = 1/6, P(0) = 2/3.
    Rng rng(19);
    int plus = 0, minus = 0, zero = 0;
    const int n = 120000;
    for (int i = 0; i < n; ++i) {
        const int e = rng.projectionEntry();
        if (e > 0)
            ++plus;
        else if (e < 0)
            ++minus;
        else
            ++zero;
    }
    EXPECT_NEAR(plus / double(n), 1.0 / 6.0, 0.01);
    EXPECT_NEAR(minus / double(n), 1.0 / 6.0, 0.01);
    EXPECT_NEAR(zero / double(n), 2.0 / 3.0, 0.01);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(ZipfSampler, InRange)
{
    Rng rng(23);
    ZipfSampler zipf(1000, 1.1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf(rng), 1000u);
}

TEST(ZipfSampler, SkewTowardLowIndices)
{
    Rng rng(29);
    ZipfSampler zipf(10000, 1.1);
    int head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        head += (zipf(rng) < 100);
    // For alpha ~ 1.1, the first 1% of categories carries a large share.
    EXPECT_GT(head / double(n), 0.35);
}

TEST(ZipfSampler, HigherAlphaIsMoreSkewed)
{
    Rng r1(31), r2(31);
    ZipfSampler mild(10000, 1.05), steep(10000, 1.8);
    int head_mild = 0, head_steep = 0;
    for (int i = 0; i < 20000; ++i) {
        head_mild += (mild(r1) < 10);
        head_steep += (steep(r2) < 10);
    }
    EXPECT_GT(head_steep, head_mild);
}

TEST(ZipfSampler, SingleCategory)
{
    Rng rng(37);
    ZipfSampler zipf(1, 1.2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf(rng), 0u);
}

/** Statistical shape: empirical frequency ratio f(1)/f(2) ~ 2^alpha. */
TEST(ZipfSampler, FrequencyRatioMatchesAlpha)
{
    Rng rng(41);
    const double alpha = 1.3;
    ZipfSampler zipf(100000, alpha);
    int c0 = 0, c1 = 0;
    for (int i = 0; i < 400000; ++i) {
        const uint64_t v = zipf(rng);
        c0 += (v == 0);
        c1 += (v == 1);
    }
    ASSERT_GT(c1, 0);
    EXPECT_NEAR(double(c0) / c1, std::pow(2.0, alpha), 0.35);
}

} // namespace
} // namespace enmc
