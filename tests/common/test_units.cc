/**
 * @file
 * Tests for unit conversion helpers.
 */

#include <gtest/gtest.h>

#include "common/units.h"

namespace enmc {
namespace {

TEST(Units, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0u);
    EXPECT_EQ(ceilDiv(1, 4), 1u);
    EXPECT_EQ(ceilDiv(4, 4), 1u);
    EXPECT_EQ(ceilDiv(5, 4), 2u);
}

TEST(Units, RoundUp)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
}

TEST(Units, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(65));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
}

TEST(Units, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(1024), 10u);
}

TEST(Units, CyclesSecondsRoundTrip)
{
    const double freq = 1200e6;
    const Cycles c = 120000;
    const double s = cyclesToSeconds(c, freq);
    EXPECT_DOUBLE_EQ(s, 1e-4);
    EXPECT_EQ(secondsToCycles(s, freq), c);
}

TEST(Units, SecondsToCyclesRoundsUp)
{
    // 1.5 cycles of work must take 2 cycles.
    EXPECT_EQ(secondsToCycles(1.5 / 100.0, 100.0), 2u);
}

TEST(Units, CrossDomainSlowToFast)
{
    // 1 cycle at 400 MHz = 3 cycles at 1200 MHz.
    EXPECT_EQ(crossDomain(1, 400e6, 1200e6), 3u);
    EXPECT_EQ(crossDomain(10, 400e6, 1200e6), 30u);
}

TEST(Units, CrossDomainFastToSlowRoundsUp)
{
    // 1 cycle at 1200 MHz is visible after 1 cycle at 400 MHz.
    EXPECT_EQ(crossDomain(1, 1200e6, 400e6), 1u);
    EXPECT_EQ(crossDomain(4, 1200e6, 400e6), 2u);
}

TEST(Units, SizeConstants)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

} // namespace
} // namespace enmc
