/**
 * @file
 * Tests for the simulation thread pool: every iteration runs exactly
 * once, nested use does not deadlock, and the serial path is serial.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace enmc {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce)
{
    for (size_t workers : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(workers);
        constexpr size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(0, n, [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                         << workers << " workers";
    }
}

TEST(ThreadPool, HandlesEmptyAndSingleIterationRanges)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, [&](size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
    pool.parallelFor(7, 8, [&](size_t i) {
        EXPECT_EQ(i, 7u);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, MoreWorkersThanIterations)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(0, 3, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    // Outer iterations each run an inner parallelFor on the same pool;
    // the caller-participates design must finish even when every worker
    // is blocked in an outer iteration.
    ThreadPool pool(2);
    constexpr size_t outer = 4, inner = 16;
    std::vector<std::atomic<int>> hits(outer * inner);
    pool.parallelFor(0, outer, [&](size_t o) {
        pool.parallelFor(0, inner,
                         [&](size_t i) { ++hits[o * inner + i]; });
    });
    for (size_t i = 0; i < outer * inner; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SubmitAndWaitDrainsAllJobs)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ++done; });
    pool.wait();
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, FreeFunctionSerialModeRunsInOrder)
{
    // workers == 1 must run inline, in index order (the reference path
    // the determinism tests compare against).
    std::vector<size_t> order;
    parallelFor(3, 9, 1, [&](size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 6u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], 3 + i);
}

TEST(ThreadPool, FreeFunctionDedicatedWorkers)
{
    std::vector<std::atomic<int>> hits(100);
    parallelFor(0, 100, 4, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < 100; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptionsAndPoolSurvives)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 256,
                                  [](size_t i) {
                                      if (i == 17)
                                          throw std::runtime_error(
                                              "iteration 17 failed");
                                  }),
                 std::runtime_error);

    // The workers drained cleanly: the next loop runs normally.
    std::atomic<int> done{0};
    pool.parallelFor(0, 64, [&](size_t) { ++done; });
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, PropagatedExceptionCarriesTheOriginalMessage)
{
    ThreadPool pool(2);
    try {
        pool.parallelFor(0, 8, [](size_t i) {
            if (i == 3)
                throw std::runtime_error("bad slice");
        });
        FAIL() << "expected the exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "bad slice");
    }
}

TEST(ThreadPool, SerialPathStopsAtTheThrow)
{
    // workers == 1 runs inline, so the throw aborts the loop immediately
    // (matching a plain for loop) instead of skip-draining.
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [&](size_t i) {
                                      ++ran;
                                      if (i == 5)
                                          throw std::logic_error("stop");
                                  }),
                 std::logic_error);
    EXPECT_EQ(ran.load(), 6);
}

TEST(ThreadPool, FreeFunctionPropagatesFromDedicatedWorkers)
{
    EXPECT_THROW(parallelFor(0, 128, 4,
                             [](size_t i) {
                                 if (i % 2 == 0)
                                     throw std::runtime_error(
                                         "even failure");
                             }),
                 std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsUsable)
{
    std::atomic<int> calls{0};
    ThreadPool::global().parallelFor(0, 32, [&](size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 32);
    EXPECT_GE(ThreadPool::global().workers(), 1u);
}

} // namespace
} // namespace enmc
