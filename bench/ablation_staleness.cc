/**
 * @file
 * Screener-staleness ablation.
 *
 * The paper trains the screener offline against a frozen classifier
 * (Algorithm 1: "the classifier parameters ... are fixed"). Production
 * classifiers keep fine-tuning, so the deployment question is: how fast
 * does screening quality decay as the classifier drifts away from the
 * weights the screener was distilled on, and how cheap is the refresh?
 *
 * Method: distill a screener, then churn an increasing fraction of
 * classifier *rows* (categories whose embeddings the fine-tune relearned
 * — isotropic weight noise barely moves the top-k ranking, row churn is
 * what breaks screening), measuring candidate recall and top-1 agreement
 * against the drifted classifier before and after a closed-form
 * re-distillation.
 */

#include <cmath>

#include "bench_common.h"
#include "screening/metrics.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

/**
 * Classifier with a `churn` fraction of rows re-learned as *competitive*
 * categories: each churned row becomes a slightly boosted copy of a
 * random existing row (a new item that takes over an old one's
 * neighborhood — what recommendation catalogs actually do). These rows
 * enter the top-k of real queries, which is exactly what a stale
 * screener cannot predict.
 */
nn::Classifier
driftedClassifier(const nn::Classifier &base, double churn, uint64_t seed)
{
    Rng rng(seed);
    tensor::Matrix w = base.weights();
    const size_t l = w.rows();
    const size_t d = w.cols();
    const auto n_churn = static_cast<size_t>(churn * l);
    for (size_t i = 0; i < n_churn; ++i) {
        const auto dst = static_cast<size_t>(rng.uniformInt(0, l - 1));
        const auto src = static_cast<size_t>(rng.uniformInt(0, l - 1));
        for (size_t c = 0; c < d; ++c)
            w(dst, c) = 1.05f * base.weights()(src, c);
    }
    tensor::Vector b = base.bias();
    return nn::Classifier(std::move(w), std::move(b),
                          base.normalization());
}

struct Quality
{
    double recall;
    double top1;
};

Quality
measure(const nn::Classifier &clf, screening::Screener &scr,
        const std::vector<tensor::Vector> &eval)
{
    screening::Pipeline pipe(clf, scr);
    const auto q = screening::evaluateQuality(pipe, eval, 5);
    return {q.candidate_recall, q.top1_agreement};
}

} // namespace

int
main()
{
    workloads::SyntheticConfig mc;
    mc.categories = 4096;
    mc.hidden = 64;
    workloads::SyntheticModel model(mc);
    Rng rng = model.makeRng(9);
    const auto train = model.sampleHiddenBatch(rng, 256);
    const auto eval = model.sampleHiddenBatch(rng, 64);

    screening::ScreenerConfig scfg;
    scfg.categories = mc.categories;
    scfg.hidden = mc.hidden;
    scfg.top_m = 128;
    Rng srng(42);
    screening::Screener scr(scfg, srng);
    screening::Trainer base_trainer(model.classifier(), scr,
                                    screening::TrainerConfig{});
    base_trainer.train(train, {});
    scr.freezeQuantized();

    printHeader("Screener staleness under classifier row churn");
    printRow({"churn", "stale-recall%", "stale-top1%", "fresh-recall%",
              "fresh-top1%"});

    for (double drift : {0.0, 0.02, 0.05, 0.1, 0.2, 0.5}) {
        const nn::Classifier drifted = driftedClassifier(
            model.classifier(), drift,
            100 + static_cast<uint64_t>(drift * 1000));

        // Stale: screener still fitted to the original weights.
        const Quality stale = measure(drifted, scr, eval);

        // Fresh: closed-form re-distillation against the drifted model
        // (one pass over the calibration set — seconds of work).
        screening::Screener fresh(scfg, srng);
        screening::TrainerConfig tc;
        tc.epochs = 1;
        screening::Trainer trainer(drifted, fresh, tc);
        trainer.train(train, {});
        fresh.freezeQuantized();
        const Quality refreshed = measure(drifted, fresh, eval);

        printRow({fmt(drift, "%.2f"), fmt(100 * stale.recall, "%.1f"),
                  fmt(100 * stale.top1, "%.1f"),
                  fmt(100 * refreshed.recall, "%.1f"),
                  fmt(100 * refreshed.top1, "%.1f")});
    }

    std::printf(
        "\nFinding: screening quality degrades roughly in proportion to\n"
        "the fraction of categories the fine-tune relearned (the stale\n"
        "screener cannot rank rows it never saw), while a closed-form\n"
        "re-distillation — one pass over the calibration set, no SGD —\n"
        "restores full quality at every churn level. A deployment should\n"
        "refresh the screener with each model push; the cost is\n"
        "negligible next to the fine-tune itself.\n");
    return 0;
}
