/**
 * @file
 * Reproduces paper Fig. 11: quality vs speedup trade-off of Approximate
 * Screening (AS) against SVD-softmax and FGD on the four Table 2
 * workloads.
 *
 * Quality is measured at functional scale (synthetic models with the
 * registry's reduced dimensions) as agreement with exact full
 * classification — the quantity BLEU / perplexity / P@1 are monotone in.
 * Speedup is the algorithmic cost-model speedup over CPU full
 * classification computed at *full* workload scale, with each method's
 * swept parameter mapped proportionally.
 */

#include <cmath>
#include <memory>

#include "baselines/fgd.h"
#include "baselines/svd_softmax.h"
#include "bench_common.h"
#include "screening/metrics.h"
#include "screening/trainer.h"
#include "tensor/topk.h"
#include "workloads/synthetic.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

struct Eval
{
    workloads::SyntheticModel model;
    std::vector<tensor::Vector> train;
    std::vector<tensor::Vector> eval;

    explicit Eval(const workloads::Workload &w)
        : model(w.functionalConfig())
    {
        Rng rng = model.makeRng(1);
        train = model.sampleHiddenBatch(rng, 256);
        eval = model.sampleHiddenBatch(rng, 64);
    }

    struct Quality
    {
        double top1 = 0.0; //!< argmax agreement (accuracy-style metrics)
        double dist = 0.0; //!< 1 - total variation (perplexity-style)
    };

    Quality
    quality(const std::function<tensor::Vector(const tensor::Vector &)>
                &approx_logits) const
    {
        Quality q;
        for (const auto &h : eval) {
            const auto ref = model.classifier().logits(h);
            const auto approx = approx_logits(h);
            q.top1 += (tensor::argmax(approx) == tensor::argmax(ref));
            const auto p_ref = tensor::softmax(ref);
            const auto p_approx = tensor::softmax(approx);
            double tv = 0.0;
            for (size_t i = 0; i < p_ref.size(); ++i)
                tv += std::fabs(p_ref[i] - p_approx[i]);
            q.dist += 1.0 - 0.5 * tv;
        }
        q.top1 /= eval.size();
        q.dist /= eval.size();
        return q;
    }
};

/** Full-scale cost-model speedup of AS at candidate fraction `frac`. */
double
asSpeedup(const workloads::Workload &w, double frac)
{
    const double l = double(w.categories);
    const double d = double(w.hidden);
    const double k = d / 4.0;
    const double full = l * d * 4.0;
    const double screen = l * k * 0.5 + l * 4.0 + k * d * 0.25;
    const double cand = frac * l * d * 4.0;
    return full / (screen + cand);
}

/** Full-scale cost-model speedup of SVD-softmax. */
double
svdSpeedup(const workloads::Workload &w, double window_frac,
           double refine_frac)
{
    const double l = double(w.categories);
    const double d = double(w.hidden);
    const double win = window_frac * d;
    const double full = l * d * 4.0;
    const double cost = d * d * 4.0 + l * win * 4.0 +
                        refine_frac * l * (d - win) * 4.0;
    return full / cost;
}

/**
 * Full-scale cost-model speedup of FGD. Graph search visits an absolute
 * node count that grows ~logarithmically with l, so the functional-scale
 * visit count is scaled by the log ratio rather than kept proportional.
 */
double
fgdSpeedup(const workloads::Workload &w, double visited_functional,
           double l_functional, size_t degree)
{
    const double l = double(w.categories);
    const double d = double(w.hidden);
    const double visited =
        visited_functional * std::log(l) / std::log(l_functional);
    const double full = l * d * 4.0;
    const double cost = visited * (d * 4.0 + degree * 4.0);
    return full / cost;
}

} // namespace

int
main()
{
    printHeader("Figure 11: quality vs speedup (AS / SVD / FGD)");

    for (const auto &w : workloads::table2Workloads()) {
        std::printf("\n-- %s (functional l=%llu d=%llu; full l=%llu d=%llu)"
                    " --\n",
                    w.abbr.c_str(),
                    static_cast<unsigned long long>(w.functional_categories),
                    static_cast<unsigned long long>(
                        w.functionalConfig().hidden),
                    static_cast<unsigned long long>(w.categories),
                    static_cast<unsigned long long>(w.hidden));
        printRow({"method", "param", "top1%", "dist%", "speedup-x"});
        Eval ev(w);
        const size_t l_f = ev.model.classifier().categories();
        const size_t d_f = ev.model.classifier().hidden();

        // --- Approximate Screening: sweep candidate fraction ---
        screening::ScreenerConfig scfg;
        scfg.categories = l_f;
        scfg.hidden = d_f;
        scfg.reduction_scale = 0.25;
        Rng srng(42);
        screening::Screener screener(scfg, srng);
        screening::Trainer trainer(ev.model.classifier(), screener,
                                   screening::TrainerConfig{});
        trainer.train(ev.train, {});
        screener.freezeQuantized();

        for (double frac : {0.005, 0.01, 0.025, 0.05, 0.10, 0.15}) {
            const size_t m =
                std::max<size_t>(1, static_cast<size_t>(frac * l_f));
            screener.setSelection(screening::SelectionMode::TopM, m, 0.0f);
            screening::Pipeline pipe(ev.model.classifier(), screener);
            const auto q = ev.quality([&](const tensor::Vector &h) {
                return pipe.infer(h).logits;
            });
            printRow({"AS", fmt(100 * frac, "m=%.1f%%"),
                      fmt(100 * q.top1, "%.1f"), fmt(100 * q.dist, "%.1f"),
                      fmt(asSpeedup(w, frac), "%.1f")});
        }

        // --- SVD-softmax: sweep preview window ---
        for (double wf : {1.0 / 16, 1.0 / 8, 1.0 / 4}) {
            baselines::SvdSoftmaxConfig vcfg;
            vcfg.window = std::max<size_t>(1, size_t(wf * d_f));
            vcfg.top_n = std::max<size_t>(1, l_f / 40);
            baselines::SvdSoftmax svd(ev.model.classifier(), vcfg);
            const auto q = ev.quality([&](const tensor::Vector &h) {
                return svd.infer(h).logits;
            });
            printRow({"SVD", fmt(wf * 100, "w=%.1f%%d"),
                      fmt(100 * q.top1, "%.1f"), fmt(100 * q.dist, "%.1f"),
                      fmt(svdSpeedup(w, wf, 0.025), "%.1f")});
        }

        // --- FGD: sweep search beam ---
        for (size_t ef : {32, 64, 128}) {
            baselines::FgdConfig fcfg;
            fcfg.ef_search = ef;
            fcfg.top_n = std::max<size_t>(1, l_f / 40);
            baselines::Fgd fgd(ev.model.classifier(), fcfg);
            const auto q = ev.quality([&](const tensor::Vector &h) {
                return fgd.infer(h).logits;
            });
            printRow({"FGD", "ef=" + std::to_string(ef),
                      fmt(100 * q.top1, "%.1f"), fmt(100 * q.dist, "%.1f"),
                      fmt(fgdSpeedup(w, fgd.avgVisited(), double(l_f),
                                     fcfg.degree),
                          "%.1f")});
        }
    }

    std::printf(
        "\nPaper shape (Fig. 11): AS reaches ~lossless quality at 5.7-17.4x\n"
        "speedup depending on the workload; at matched quality, AS offers a\n"
        "better speedup than both SVD-softmax (FP32 preview, ~4x costlier)\n"
        "and FGD (graph search with no approximate tail).\n");
    return 0;
}
