/**
 * @file
 * Serving-throughput load generator for the serve layer: dynamic
 * batching vs batch-1 serving on one execution backend.
 *
 * Two load models, both deterministic virtual-time simulations (results
 * are a pure function of the flags — see src/serve/loop.h):
 *
 *  - **closed loop** (default): `--clients` clients each keep one
 *    request in flight, `--requests` times. This is the serving regime
 *    where dynamic batching pays: the per-offload handoff (NMPO's
 *    offload-initiation + completion-detection cost) amortizes across
 *    the batch while batch-1 serving pays it per request.
 *  - **open loop** (`--poisson-qps=R`): Poisson arrivals at rate R with
 *    a fixed seed, replayed through the same loop.
 *
 * `--check` asserts the PR's headline claim — batched throughput at
 * least 2x batch-1 throughput at no-worse p99 latency — and exits
 * non-zero when it does not hold.
 *
 * Usage:
 *   serving_throughput [--backend=enmc] [--workload=XMLCNN-670K]
 *                      [--clients=16] [--requests=8] [--max-batch=16]
 *                      [--max-delay-us=200] [--handoff-us=25]
 *                      [--poisson-qps=R] [--check]
 *                      [--metrics-json=FILE] [--trace-json=FILE]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/percentiles.h"
#include "obs/registry.h"
#include "serve/loop.h"
#include "workloads/registry.h"

using namespace enmc;

namespace {

/** `--name=value` lookup; returns fallback when absent. */
std::string
flagValue(int argc, char **argv, const std::string &name,
          const std::string &fallback)
{
    const std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return fallback;
}

double
flagDouble(int argc, char **argv, const std::string &name, double fallback)
{
    const std::string v = flagValue(argc, argv, name, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

bool
flagPresent(int argc, char **argv, const std::string &name)
{
    const std::string flag = "--" + name;
    for (int i = 1; i < argc; ++i)
        if (flag == argv[i])
            return true;
    return false;
}

struct RunResult
{
    std::string label;
    serve::ServeReport report;
    double qps = 0.0;
    obs::Percentiles latency{std::vector<double>{}};
    double mean_batch = 0.0;
};

RunResult
runClosed(const serve::ServeConfig &cfg, const runtime::JobSpec &job,
          const std::string &label, size_t clients, size_t per_client)
{
    serve::ServeLoop loop(cfg, job);
    RunResult out;
    out.label = label;
    out.report = loop.runClosedLoop(
        clients, per_client,
        [](serve::RequestId, size_t) { return serve::Request{}; });
    out.qps = out.report.queriesPerSecond();
    out.latency = out.report.measuredLatency();
    double batch_sum = 0.0;
    size_t n = 0;
    for (const serve::Response &r : out.report.responses)
        if (r.admission == serve::Admission::Admitted) {
            batch_sum += r.batch_size;
            ++n;
        }
    out.mean_batch = n ? batch_sum / static_cast<double>(n) : 0.0;
    return out;
}

RunResult
runPoisson(const serve::ServeConfig &cfg, const runtime::JobSpec &job,
           const std::string &label, size_t requests, double qps_in)
{
    serve::ArrivalTrace trace;
    Rng rng(42);
    double t = 0.0;
    for (size_t i = 0; i < requests; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_us = t;
        trace.requests.push_back(r);
        // Exponential interarrival at `qps_in` requests/sec.
        t += -std::log(1.0 - rng.uniform(0.0, 1.0)) * 1e6 / qps_in;
    }

    serve::ServeLoop loop(cfg, job);
    RunResult out;
    out.label = label;
    out.report = loop.replay(trace);
    out.qps = out.report.queriesPerSecond();
    out.latency = out.report.measuredLatency();
    return out;
}

void
printResult(const RunResult &r)
{
    std::printf("  %-14s %8.0f %9.1f %9.1f %9.1f %9.1f %7.2f %5zu/%zu\n",
                r.label.c_str(), r.qps, r.latency.at(0.50),
                r.latency.at(0.95), r.latency.at(0.99), r.latency.max(),
                r.mean_batch, r.report.admittedCount(),
                r.report.responses.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "serving_throughput");

    const std::string backend = flagValue(argc, argv, "backend", "enmc");
    const std::string wl_name =
        flagValue(argc, argv, "workload", "XMLCNN-670K");
    const size_t clients =
        static_cast<size_t>(flagDouble(argc, argv, "clients", 16));
    const size_t per_client =
        static_cast<size_t>(flagDouble(argc, argv, "requests", 8));
    const size_t max_batch =
        static_cast<size_t>(flagDouble(argc, argv, "max-batch", 16));
    const double poisson_qps = flagDouble(argc, argv, "poisson-qps", 0.0);
    const bool check = flagPresent(argc, argv, "check");

    const workloads::Workload wl = workloads::findWorkload(wl_name);
    const runtime::JobSpec job = bench::jobSpecFor(wl, 1, true);

    serve::ServeConfig base = serve::serveConfigFromEnv();
    base.backend = backend;
    base.max_batch = max_batch;
    base.max_delay_us = flagDouble(argc, argv, "max-delay-us", 200.0);
    base.handoff_us = flagDouble(argc, argv, "handoff-us", 25.0);
    base.compute_logits = false; // timing-only load generation
    base.warmup_requests =
        std::min(base.warmup_requests, clients * per_client / 4);

    serve::ServeConfig serial = base;
    serial.max_batch = 1;
    serial.max_delay_us = 0.0;

    std::printf("serving %s (l=%llu, d=%llu) on backend '%s': "
                "%zu clients x %zu requests, handoff %.0f us\n",
                wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(wl.hidden),
                backend.c_str(), clients, per_client, base.handoff_us);
    std::printf("\n  %-14s %8s %9s %9s %9s %9s %7s %9s\n", "mode", "qps",
                "p50us", "p95us", "p99us", "maxus", "batch", "served");

    const RunResult serial_run =
        runClosed(serial, job, "batch-1", clients, per_client);
    printResult(serial_run);
    const RunResult batched_run = runClosed(
        base, job, "batch-" + std::to_string(max_batch), clients,
        per_client);
    printResult(batched_run);

    const double speedup =
        serial_run.qps > 0.0 ? batched_run.qps / serial_run.qps : 0.0;
    std::printf("\n  dynamic batching: %.2fx throughput, p99 %+.1f us vs "
                "batch-1\n",
                speedup,
                batched_run.latency.at(0.99) - serial_run.latency.at(0.99));

    if (poisson_qps > 0.0) {
        std::printf("\nopen loop, Poisson arrivals at %.0f qps:\n",
                    poisson_qps);
        std::printf("  %-14s %8s %9s %9s %9s %9s %7s %9s\n", "mode", "qps",
                    "p50us", "p95us", "p99us", "maxus", "batch", "served");
        printResult(runPoisson(base, job, "poisson",
                               clients * per_client, poisson_qps));
    }

    // Export the bench's own headline numbers with the component groups.
    StatGroup bench_stats("bench.serving");
    obs::StatRegistration bench_reg(bench_stats);
    bench_stats.addScalar("serialQps", "batch-1 closed-loop throughput")
        .sample(serial_run.qps);
    bench_stats.addScalar("batchedQps", "dynamic-batching throughput")
        .sample(batched_run.qps);
    bench_stats.addScalar("speedup", "batched over batch-1 throughput")
        .sample(speedup);
    bench_stats.addScalar("serialP99Us", "batch-1 p99 latency")
        .sample(serial_run.latency.at(0.99));
    bench_stats.addScalar("batchedP99Us", "dynamic-batching p99 latency")
        .sample(batched_run.latency.at(0.99));
    obs::writeMetrics(metrics);

    if (check) {
        const bool qps_ok = speedup >= 2.0;
        const bool p99_ok =
            batched_run.latency.at(0.99) <= serial_run.latency.at(0.99);
        std::printf("\ncheck: %.2fx >= 2.0x: %s; batched p99 <= batch-1 "
                    "p99: %s\n",
                    speedup, qps_ok ? "yes" : "NO", p99_ok ? "yes" : "NO");
        if (!qps_ok || !p99_ok) {
            std::printf("check: FAIL\n");
            return 1;
        }
        std::printf("check: PASS\n");
    }
    return 0;
}
