/**
 * @file
 * Serving-throughput load generator for the serve layer: dynamic
 * batching vs batch-1 serving on one execution backend.
 *
 * Two load models, both deterministic virtual-time simulations (results
 * are a pure function of the flags — see src/serve/loop.h):
 *
 *  - **closed loop** (default): `--clients` clients each keep one
 *    request in flight, `--requests` times. This is the serving regime
 *    where dynamic batching pays: the per-offload handoff (NMPO's
 *    offload-initiation + completion-detection cost) amortizes across
 *    the batch while batch-1 serving pays it per request.
 *  - **open loop** (`--poisson-qps=R`): Poisson arrivals at rate R with
 *    a fixed seed, replayed through the same loop.
 *
 * `--check` asserts the PR's headline claim — batched throughput at
 * least 2x batch-1 throughput at no-worse p99 latency — and exits
 * non-zero when it does not hold.
 *
 * `--check-cache` is the candidate-cache + hot-swap gate: it replays a
 * Zipfian(1.1) trace over a small hidden-vector pool — the skewed
 * traffic the hot-label cache is built for — twice through the
 * functional serve path (cache on vs cache off) and asserts served
 * outputs are memcmp-identical while the cache-on p50 lands strictly
 * below cache-off (hits skip the screener, and the dispatcher deducts
 * that share from the modeled batch time). It then runs a live threaded
 * load with a screener refresh scheduled mid-run and asserts zero
 * dropped and zero wrong responses: every response must match a
 * reference classifier frozen at the epoch the response records.
 * check_metrics.py validates the exported cache/snapshot accounting.
 *
 * `--check-auto` is the adaptive-offload-planner gate instead: it sweeps
 * max_batch over {1, 2, 4, 8, 16, 32}, runs every planner candidate as a
 * fixed backend plus `--backend=auto` at each point, and asserts that
 * auto lands within 0.95x of the best fixed backend and strictly above
 * the worst at every swept batch size (warm-up probing is absorbed by
 * the serve layer's warm-up window). It then replays a traffic-shift +
 * fault-burst scenario to prove the planner re-plans (switchEvents >= 1
 * in the exported metrics, validated by check_metrics.py
 * --expect-switch). `--json=FILE` archives the sweep table.
 *
 * Usage:
 *   serving_throughput [--backend=enmc] [--workload=XMLCNN-670K]
 *                      [--clients=16] [--requests=8] [--max-batch=16]
 *                      [--max-delay-us=200] [--handoff-us=25]
 *                      [--poisson-qps=R] [--check]
 *                      [--check-auto] [--check-cache] [--json=FILE]
 *                      [--metrics-json=FILE] [--trace-json=FILE]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/percentiles.h"
#include "obs/registry.h"
#include "runtime/api.h"
#include "runtime/backend.h"
#include "runtime/planner.h"
#include "serve/loop.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

using namespace enmc;

namespace {

/** `--name=value` lookup; returns fallback when absent. */
std::string
flagValue(int argc, char **argv, const std::string &name,
          const std::string &fallback)
{
    const std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return fallback;
}

double
flagDouble(int argc, char **argv, const std::string &name, double fallback)
{
    const std::string v = flagValue(argc, argv, name, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

bool
flagPresent(int argc, char **argv, const std::string &name)
{
    const std::string flag = "--" + name;
    for (int i = 1; i < argc; ++i)
        if (flag == argv[i])
            return true;
    return false;
}

struct RunResult
{
    std::string label;
    serve::ServeReport report;
    double qps = 0.0;
    obs::Percentiles latency{std::vector<double>{}};
    double mean_batch = 0.0;
};

RunResult
runClosed(const serve::ServeConfig &cfg, const runtime::JobSpec &job,
          const std::string &label, size_t clients, size_t per_client)
{
    serve::ServeLoop loop(cfg, job);
    RunResult out;
    out.label = label;
    out.report = loop.runClosedLoop(
        clients, per_client,
        [](serve::RequestId, size_t) { return serve::Request{}; });
    out.qps = out.report.queriesPerSecond();
    out.latency = out.report.measuredLatency();
    double batch_sum = 0.0;
    size_t n = 0;
    for (const serve::Response &r : out.report.responses)
        if (r.admission == serve::Admission::Admitted) {
            batch_sum += r.batch_size;
            ++n;
        }
    out.mean_batch = n ? batch_sum / static_cast<double>(n) : 0.0;
    return out;
}

RunResult
runPoisson(const serve::ServeConfig &cfg, const runtime::JobSpec &job,
           const std::string &label, size_t requests, double qps_in)
{
    serve::ArrivalTrace trace;
    Rng rng(42);
    double t = 0.0;
    for (size_t i = 0; i < requests; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_us = t;
        trace.requests.push_back(r);
        // Exponential interarrival at `qps_in` requests/sec.
        t += -std::log(1.0 - rng.uniform(0.0, 1.0)) * 1e6 / qps_in;
    }

    serve::ServeLoop loop(cfg, job);
    RunResult out;
    out.label = label;
    out.report = loop.replay(trace);
    out.qps = out.report.queriesPerSecond();
    out.latency = out.report.measuredLatency();
    return out;
}

void
printResult(const RunResult &r)
{
    std::printf("  %-14s %8.0f %9.1f %9.1f %9.1f %9.1f %7.2f %5zu/%zu\n",
                r.label.c_str(), r.qps, r.latency.at(0.50),
                r.latency.at(0.95), r.latency.at(0.99), r.latency.max(),
                r.mean_batch, r.report.admittedCount(),
                r.report.responses.size());
}

// ------------------------------------------------- --check-auto mode

/** One swept batch size: every fixed candidate vs the auto planner. */
struct SweepPoint
{
    size_t max_batch = 0;
    std::vector<std::pair<std::string, double>> fixed_qps;
    double auto_qps = 0.0;
    double best = 0.0, worst = 0.0;
    std::string best_name, worst_name;
    bool ok = false;
};

/** The backend an offline profile picks at (batch, candidates) — the
 *  planner's steady-state target, and the shift scenario's kill victim. */
std::string
offlineWinner(const runtime::JobSpec &job,
              const std::vector<std::string> &candidates, uint64_t batch,
              uint64_t cands)
{
    runtime::JobSpec spec = job;
    spec.batch = batch;
    spec.candidates = cands;
    double best = -1.0;
    std::string winner;
    for (const auto &name : candidates) {
        const double s = runtime::createBackend(name)->runJob(spec).seconds;
        if (best < 0.0 || s < best) {
            best = s;
            winner = name;
        }
    }
    return winner;
}

/**
 * Traffic-shift + fault-burst replay: two saturating bursts whose
 * candidate budget moves two power-of-two buckets (a fresh planner bin),
 * with the phase-A winner blacklisted mid-run. With full batches of 4,
 * plans 0-2 warm up the first bin, plan 3 goes steady on the winner and
 * plan 4 hits the kill — a deterministic steady-state switch.
 */
uint64_t
runShiftScenario(const serve::ServeConfig &base, const runtime::JobSpec &job,
                 const std::vector<std::string> &candidates)
{
    serve::ServeConfig cfg = base;
    cfg.backend = "auto";
    cfg.max_batch = 4;
    cfg.max_delay_us = 50.0;
    cfg.warmup_requests = 0;
    cfg.planner.explore_every = 8; // re-probe aggressively under faults
    cfg.planner.kill_backend = offlineWinner(job, candidates, 4, 96);
    cfg.planner.kill_after = 4;
    cfg.planner.revive_after = 6;

    serve::ArrivalTrace trace;
    Rng arr(1234);
    double now = 0.0;
    for (size_t i = 0; i < 48; ++i) {
        const bool phase_b = i >= 24;
        if (i == 24)
            now = 1e8; // let phase A drain completely first
        now += -std::log(1.0 - arr.uniform(0.0, 1.0)) * 2.0;
        serve::Request r;
        r.id = i;
        r.candidates = phase_b ? 480 : 96;
        r.arrival_us = now;
        trace.requests.push_back(r);
    }
    trace.normalize();

    serve::ServeLoop loop(cfg, job);
    (void)loop.replay(trace);
    runtime::OffloadPlanner *planner = loop.planner();
    const uint64_t switches =
        planner->stats().counter("switchEvents").value();
    std::printf("\ntraffic shift + fault burst (kill '%s' for 6 batches): "
                "%llu plans, %llu switch events, %llu dead dispatches\n",
                cfg.planner.kill_backend.c_str(),
                static_cast<unsigned long long>(planner->planCount()),
                static_cast<unsigned long long>(switches),
                static_cast<unsigned long long>(
                    planner->stats().counter("deadDispatches").value()));
    return switches;
}

void
writeSweepJson(const std::string &path, const std::string &workload,
               const std::vector<std::string> &candidates,
               const std::vector<SweepPoint> &points, uint64_t switches)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n  \"schema\": \"enmc.bench.serving_auto\",\n"
                    "  \"schema_version\": 1,\n"
                    "  \"workload\": \"%s\",\n  \"candidates\": [",
                 workload.c_str());
    for (size_t i = 0; i < candidates.size(); ++i)
        std::fprintf(f, "%s\"%s\"", i ? ", " : "", candidates[i].c_str());
    std::fprintf(f, "],\n  \"sweep\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        std::fprintf(f, "    {\"max_batch\": %zu, \"fixed_qps\": {",
                     p.max_batch);
        for (size_t j = 0; j < p.fixed_qps.size(); ++j)
            std::fprintf(f, "%s\"%s\": %.1f", j ? ", " : "",
                         p.fixed_qps[j].first.c_str(),
                         p.fixed_qps[j].second);
        std::fprintf(f,
                     "}, \"auto_qps\": %.1f, \"best\": \"%s\", "
                     "\"ratio_vs_best\": %.4f, \"pass\": %s}%s\n",
                     p.auto_qps, p.best_name.c_str(),
                     p.best > 0.0 ? p.auto_qps / p.best : 0.0,
                     p.ok ? "true" : "false",
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"shift\": {\"switch_events\": %llu}\n}\n",
                 static_cast<unsigned long long>(switches));
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

/** The planner gate: auto within 0.95x of the best fixed backend and
 *  strictly above the worst at every swept batch size. */
int
runCheckAuto(int argc, char **argv, const obs::MetricsOptions &metrics)
{
    const std::string wl_name =
        flagValue(argc, argv, "workload", "XMLCNN-670K");
    const workloads::Workload wl = workloads::findWorkload(wl_name);
    const runtime::JobSpec job = bench::jobSpecFor(wl, 1, true);
    const std::vector<std::string> candidates = {"cpu", "enmc",
                                                 "tensordimm"};

    serve::ServeConfig base = serve::serveConfigFromEnv();
    base.handoff_us = flagDouble(argc, argv, "handoff-us", 25.0);
    base.compute_logits = false; // timing-only load generation
    base.planner.candidates = candidates;
    // One forced probe per 256 plans keeps exploration's amortized cost
    // well inside the 5% gate budget even against an 8x-slower candidate
    // (the default 1-in-64 cadence alone costs ~10% at batch 1, where
    // cpu trails enmc 7.6x). Re-plan agility is asserted separately by
    // the traffic-shift scenario below, which keeps its own cadence.
    base.planner.explore_every = 256;

    std::printf("auto-planner gate on %s (l=%llu, d=%llu), candidates "
                "cpu/enmc/tensordimm\n\n",
                wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(wl.hidden));
    std::printf("  %-6s", "batch");
    for (const auto &name : candidates)
        std::printf(" %12s", name.c_str());
    std::printf(" %12s %8s %6s\n", "auto", "vs-best", "gate");

    std::vector<SweepPoint> points;
    bool all_ok = true;
    for (size_t max_batch : {1, 2, 4, 8, 16, 32}) {
        const size_t clients = std::max<size_t>(16, 2 * max_batch);
        const size_t per_client = 8;
        serve::ServeConfig cfg = base;
        cfg.max_batch = max_batch;
        // Absorb the planner's per-bin warm-up probes (and cold-start
        // noise for the fixed runs) in the unmeasured warm-up window.
        cfg.warmup_requests = clients * per_client / 4;

        SweepPoint pt;
        pt.max_batch = max_batch;
        for (const auto &name : candidates) {
            serve::ServeConfig fixed = cfg;
            fixed.backend = name;
            const double qps =
                runClosed(fixed, job, name, clients, per_client).qps;
            pt.fixed_qps.emplace_back(name, qps);
            if (pt.best_name.empty() || qps > pt.best) {
                pt.best = qps;
                pt.best_name = name;
            }
            if (pt.worst_name.empty() || qps < pt.worst) {
                pt.worst = qps;
                pt.worst_name = name;
            }
        }
        serve::ServeConfig auto_cfg = cfg;
        auto_cfg.backend = "auto";
        pt.auto_qps =
            runClosed(auto_cfg, job, "auto", clients, per_client).qps;
        pt.ok = pt.auto_qps >= 0.95 * pt.best && pt.auto_qps > pt.worst;
        all_ok = all_ok && pt.ok;

        std::printf("  %-6zu", max_batch);
        for (const auto &[name, qps] : pt.fixed_qps)
            std::printf(" %12.0f", qps);
        std::printf(" %12.0f %7.1f%% %6s\n", pt.auto_qps,
                    pt.best > 0.0 ? 100.0 * pt.auto_qps / pt.best : 0.0,
                    pt.ok ? "pass" : "FAIL");
        points.push_back(std::move(pt));
    }

    // Re-plan proof: export only the shift scenario's stats, so the
    // metrics document's plan group reflects exactly one run and
    // check_metrics.py --expect-switch can hold it to switchEvents >= 1.
    obs::StatRegistry::instance().resetAll();
    const uint64_t switches = runShiftScenario(base, job, candidates);

    StatGroup bench_stats("bench.serving.auto");
    obs::StatRegistration bench_reg(bench_stats);
    for (const SweepPoint &p : points) {
        const std::string suffix = ".b" + std::to_string(p.max_batch);
        bench_stats
            .addScalar("autoQps" + suffix, "auto throughput at this batch")
            .sample(p.auto_qps);
        bench_stats
            .addScalar("bestFixedQps" + suffix,
                       "best fixed-backend throughput at this batch")
            .sample(p.best);
    }
    obs::writeMetrics(metrics);

    const std::string json_path = flagValue(argc, argv, "json", "");
    if (!json_path.empty())
        writeSweepJson(json_path, wl.abbr, candidates, points, switches);

    const bool shift_ok = switches >= 1;
    std::printf("\ncheck-auto: every batch size within 0.95x of best and "
                "above worst: %s; re-plan on shift: %s\n",
                all_ok ? "yes" : "NO", shift_ok ? "yes" : "NO");
    std::printf("check-auto: %s\n",
                all_ok && shift_ok ? "PASS" : "FAIL");
    return all_ok && shift_ok ? 0 : 1;
}

// ------------------------------------------------ --check-cache mode

/**
 * The candidate-cache + hot-swap gate. Three sub-checks, all on the
 * functional serve path (compute_logits on, synthetic model):
 *
 *  1. a Zipfian(1.1) replay over a small pool of hidden vectors served
 *     with the cache on is memcmp-identical, response for response, to
 *     the same trace served with the cache off;
 *  2. the cache-on p50 is strictly below the cache-off p50 (validated
 *     hits skip the screener, and the dispatcher deducts the skipped
 *     screener share from the modeled batch service time);
 *  3. a live threaded load with a screener refresh scheduled mid-run
 *     drops nothing and corrupts nothing: every response matches a
 *     reference classifier frozen at the epoch the response records.
 */
int
runCheckCache(int argc, char **argv, const obs::MetricsOptions &metrics)
{
    const size_t requests =
        static_cast<size_t>(flagDouble(argc, argv, "requests", 160));
    const size_t cache_capacity = 64;

    // Functional-scale fixture; the job spec below carries the
    // full-scale dimensions timing is modeled at.
    workloads::SyntheticConfig mcfg;
    mcfg.categories = 1024;
    mcfg.hidden = 64;
    workloads::SyntheticModel model(mcfg);
    Rng rng = model.makeRng(1);
    const auto train = model.sampleHiddenBatch(rng, 160);
    const auto val = model.sampleHiddenBatch(rng, 48);
    const auto pool = model.sampleHiddenBatch(rng, 12);

    runtime::JobSpec job;
    job.categories = 32768;
    job.hidden = 128;
    job.reduced = 32;
    job.candidates = 512;

    serve::ServeConfig cfg;
    cfg.backend = "enmc";
    cfg.queue_capacity = 256;
    cfg.max_batch = 8;
    cfg.max_delay_us = 50.0;
    cfg.warmup_requests = 0;
    cfg.topk = 5;

    auto make_clf = [&](size_t capacity) {
        runtime::ClassifierOptions opt;
        opt.candidates = 48;
        opt.cache.capacity = capacity;
        auto clf = std::make_unique<runtime::EnmcClassifier>(
            model.classifier(), opt);
        clf->calibrate(train, val);
        return clf;
    };

    // Zipfian(1.1) repeats over the pool: the skewed traffic the
    // hot-label cache is designed for. Fixed seed, fixed arrival comb.
    serve::ArrivalTrace trace;
    std::vector<size_t> pool_idx(requests);
    Rng zipf_rng(7);
    ZipfSampler zipf(pool.size(), 1.1);
    for (size_t i = 0; i < requests; ++i) {
        pool_idx[i] = static_cast<size_t>(zipf(zipf_rng));
        serve::Request r;
        r.id = i;
        r.hidden = pool[pool_idx[i]];
        r.arrival_us = static_cast<double>(i / cfg.max_batch) * 120.0 +
                       static_cast<double>(i % 2) * 10.0;
        trace.requests.push_back(r);
    }
    trace.normalize();

    std::printf("candidate-cache gate: Zipfian(1.1) over %zu hidden "
                "vectors, %zu requests, cache capacity %zu\n\n",
                pool.size(), requests, cache_capacity);

    auto clf_off = make_clf(0);
    serve::ServeLoop loop_off(cfg, job);
    loop_off.attachClassifier(*clf_off);
    const serve::ServeReport off = loop_off.replay(trace);

    auto clf_on = make_clf(cache_capacity);
    serve::ServeLoop loop_on(cfg, job);
    loop_on.attachClassifier(*clf_on);
    const serve::ServeReport on = loop_on.replay(trace);

    // Sub-check 1: bit-identical served outputs, cache on vs off.
    size_t mismatches = 0;
    for (size_t i = 0; i < off.responses.size(); ++i) {
        const serve::Response &a = off.responses[i];
        const serve::Response &b = on.responses[i];
        if (a.probabilities.size() != b.probabilities.size() ||
            std::memcmp(a.probabilities.data(), b.probabilities.data(),
                        a.probabilities.size() * sizeof(float)) != 0 ||
            a.topk != b.topk)
            ++mismatches;
    }

    const StatGroup &cstats = clf_on->cache().stats();
    const uint64_t hits = cstats.counter("hits").value();
    const uint64_t lookups = cstats.counter("lookups").value();

    // Sub-check 2: hits shorten the modeled batch, so the cache-on p50
    // must land strictly below cache-off.
    const double p50_off = off.measuredLatency().at(0.50);
    const double p50_on = on.measuredLatency().at(0.50);
    const obs::Percentiles hit_lat = on.hitLatency();
    const obs::Percentiles miss_lat = on.missLatency();
    std::printf("  %-12s %9s %9s %9s %9s\n", "population", "p50us",
                "p95us", "p99us", "served");
    std::printf("  %-12s %9.1f %9.1f %9.1f %8zu\n", "cache-off",
                p50_off, off.measuredLatency().at(0.95),
                off.measuredLatency().at(0.99), off.measuredCount());
    std::printf("  %-12s %9.1f %9.1f %9.1f %8zu\n", "cache-on", p50_on,
                on.measuredLatency().at(0.95),
                on.measuredLatency().at(0.99), on.measuredCount());
    std::printf("  %-12s %9.1f %9.1f %9.1f %8zu\n", "  hits",
                hit_lat.at(0.50), hit_lat.at(0.95), hit_lat.at(0.99),
                on.hitCount());
    std::printf("  %-12s %9.1f %9.1f %9.1f %8zu\n", "  misses",
                miss_lat.at(0.50), miss_lat.at(0.95), miss_lat.at(0.99),
                on.missCount());
    std::printf("\n  cache: %llu/%llu lookups hit, %zu/%zu responses "
                "mismatched\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(lookups), mismatches,
                off.responses.size());

    // Sub-check 3: live threaded load with a mid-run screener refresh.
    // References: a twin frozen at epoch 1 and a twin refreshed once to
    // epoch 2 (the refresh seed depends only on (seed, epoch), so the
    // epoch-2 twin is bit-identical to the serving post-swap screener).
    auto clf_live = make_clf(cache_capacity);
    auto ref1 = make_clf(0);
    auto ref2 = make_clf(0);
    const uint64_t new_epoch = ref2->refresh(train, val);

    serve::ServeLoop live(cfg, job);
    live.attachClassifier(*clf_live);
    live.scheduleSwap(3, [&] { clf_live->refresh(train, val); });
    live.start();

    constexpr size_t kProducers = 4;
    const size_t live_requests = requests / 2;
    std::vector<std::future<serve::Response>> futures(live_requests);
    std::vector<std::thread> producers;
    for (size_t t = 0; t < kProducers; ++t)
        producers.emplace_back([&, t] {
            for (size_t i = t; i < live_requests; i += kProducers) {
                serve::Request r;
                r.id = i;
                r.hidden = pool[pool_idx[i]];
                futures[i] = live.submitOrdered(std::move(r));
            }
        });
    for (auto &p : producers)
        p.join();

    size_t wrong = 0;
    for (size_t i = 0; i < live_requests; ++i) {
        const serve::Response r = futures[i].get();
        if (r.admission != serve::Admission::Admitted ||
            (r.snapshot_epoch != 1 && r.snapshot_epoch != new_epoch)) {
            ++wrong;
            continue;
        }
        runtime::EnmcClassifier &ref =
            r.snapshot_epoch == 1 ? *ref1 : *ref2;
        const auto expect = ref.forward({pool[pool_idx[i]]}, cfg.topk);
        if (r.probabilities.size() != expect[0].probabilities.size() ||
            std::memcmp(r.probabilities.data(),
                        expect[0].probabilities.data(),
                        expect[0].probabilities.size() * sizeof(float)) !=
                0 ||
            r.topk != expect[0].topk)
            ++wrong;
    }
    const serve::ServeReport live_report = live.stop();
    const size_t dropped = live_requests - live_report.admittedCount();
    std::printf("  live swap: %zu requests, %zu dropped, %zu wrong, "
                "final epoch %llu\n",
                live_requests, dropped, wrong,
                static_cast<unsigned long long>(
                    clf_live->snapshotEpoch()));

    // Export the cache/snapshot/serve groups (all still registered) plus
    // the gate's headline numbers for check_metrics.py.
    StatGroup bench_stats("bench.serving.cache");
    obs::StatRegistration bench_reg(bench_stats);
    bench_stats.addScalar("cacheOffP50Us", "cache-off replay p50 latency")
        .sample(p50_off);
    bench_stats.addScalar("cacheOnP50Us", "cache-on replay p50 latency")
        .sample(p50_on);
    bench_stats
        .addScalar("hitP50Us", "p50 latency of the cache-hit population")
        .sample(hit_lat.at(0.50));
    bench_stats
        .addScalar("missP50Us", "p50 latency of the full-screen population")
        .sample(miss_lat.at(0.50));
    bench_stats
        .addScalar("hitRate", "validated-hit fraction of cache lookups")
        .sample(lookups ? static_cast<double>(hits) /
                              static_cast<double>(lookups)
                        : 0.0);
    obs::writeMetrics(metrics);

    const bool identical_ok = mismatches == 0;
    const bool hits_ok = hits > 0;
    const bool p50_ok = p50_on < p50_off;
    const bool live_ok = dropped == 0 && wrong == 0 &&
                         clf_live->snapshotEpoch() == new_epoch;
    std::printf("\ncheck-cache: served outputs identical: %s; hits "
                "observed: %s; cache-on p50 < cache-off p50: %s; live "
                "swap clean: %s\n",
                identical_ok ? "yes" : "NO", hits_ok ? "yes" : "NO",
                p50_ok ? "yes" : "NO", live_ok ? "yes" : "NO");
    const bool ok = identical_ok && hits_ok && p50_ok && live_ok;
    std::printf("check-cache: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "serving_throughput");

    if (flagPresent(argc, argv, "check-auto"))
        return runCheckAuto(argc, argv, metrics);
    if (flagPresent(argc, argv, "check-cache"))
        return runCheckCache(argc, argv, metrics);

    const std::string backend = flagValue(argc, argv, "backend", "enmc");
    const std::string wl_name =
        flagValue(argc, argv, "workload", "XMLCNN-670K");
    const size_t clients =
        static_cast<size_t>(flagDouble(argc, argv, "clients", 16));
    const size_t per_client =
        static_cast<size_t>(flagDouble(argc, argv, "requests", 8));
    const size_t max_batch =
        static_cast<size_t>(flagDouble(argc, argv, "max-batch", 16));
    const double poisson_qps = flagDouble(argc, argv, "poisson-qps", 0.0);
    const bool check = flagPresent(argc, argv, "check");

    const workloads::Workload wl = workloads::findWorkload(wl_name);
    const runtime::JobSpec job = bench::jobSpecFor(wl, 1, true);

    serve::ServeConfig base = serve::serveConfigFromEnv();
    base.backend = backend;
    base.max_batch = max_batch;
    base.max_delay_us = flagDouble(argc, argv, "max-delay-us", 200.0);
    base.handoff_us = flagDouble(argc, argv, "handoff-us", 25.0);
    base.compute_logits = false; // timing-only load generation
    base.warmup_requests =
        std::min(base.warmup_requests, clients * per_client / 4);

    serve::ServeConfig serial = base;
    serial.max_batch = 1;
    serial.max_delay_us = 0.0;

    std::printf("serving %s (l=%llu, d=%llu) on backend '%s': "
                "%zu clients x %zu requests, handoff %.0f us\n",
                wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(wl.hidden),
                backend.c_str(), clients, per_client, base.handoff_us);
    std::printf("\n  %-14s %8s %9s %9s %9s %9s %7s %9s\n", "mode", "qps",
                "p50us", "p95us", "p99us", "maxus", "batch", "served");

    const RunResult serial_run =
        runClosed(serial, job, "batch-1", clients, per_client);
    printResult(serial_run);
    const RunResult batched_run = runClosed(
        base, job, "batch-" + std::to_string(max_batch), clients,
        per_client);
    printResult(batched_run);

    const double speedup =
        serial_run.qps > 0.0 ? batched_run.qps / serial_run.qps : 0.0;
    std::printf("\n  dynamic batching: %.2fx throughput, p99 %+.1f us vs "
                "batch-1\n",
                speedup,
                batched_run.latency.at(0.99) - serial_run.latency.at(0.99));

    if (poisson_qps > 0.0) {
        std::printf("\nopen loop, Poisson arrivals at %.0f qps:\n",
                    poisson_qps);
        std::printf("  %-14s %8s %9s %9s %9s %9s %7s %9s\n", "mode", "qps",
                    "p50us", "p95us", "p99us", "maxus", "batch", "served");
        printResult(runPoisson(base, job, "poisson",
                               clients * per_client, poisson_qps));
    }

    // Export the bench's own headline numbers with the component groups.
    StatGroup bench_stats("bench.serving");
    obs::StatRegistration bench_reg(bench_stats);
    bench_stats.addScalar("serialQps", "batch-1 closed-loop throughput")
        .sample(serial_run.qps);
    bench_stats.addScalar("batchedQps", "dynamic-batching throughput")
        .sample(batched_run.qps);
    bench_stats.addScalar("speedup", "batched over batch-1 throughput")
        .sample(speedup);
    bench_stats.addScalar("serialP99Us", "batch-1 p99 latency")
        .sample(serial_run.latency.at(0.99));
    bench_stats.addScalar("batchedP99Us", "dynamic-batching p99 latency")
        .sample(batched_run.latency.at(0.99));
    obs::writeMetrics(metrics);

    if (check) {
        const bool qps_ok = speedup >= 2.0;
        const bool p99_ok =
            batched_run.latency.at(0.99) <= serial_run.latency.at(0.99);
        std::printf("\ncheck: %.2fx >= 2.0x: %s; batched p99 <= batch-1 "
                    "p99: %s\n",
                    speedup, qps_ok ? "yes" : "NO", p99_ok ? "yes" : "NO");
        if (!qps_ok || !p99_ok) {
            std::printf("check: FAIL\n");
            return 1;
        }
        std::printf("check: PASS\n");
    }
    return 0;
}
