/**
 * @file
 * Reproduces paper Fig. 14: energy breakdown (DRAM static, DRAM access,
 * computation & control logic) of ENMC vs TensorDIMM and
 * TensorDIMM-Large, normalized to TensorDIMM.
 *
 * The paper's two sources of ENMC's reduction: (1) INT4 low-dimensional
 * screening + no partial-sum spill cuts DRAM accesses; (2) the shorter
 * runtime cuts DRAM background (refresh/standby) energy.
 *
 * Schemes are resolved through the backend registry; pass
 * `--backend=<name>` to swap the scheme compared against TensorDIMM
 * (e.g. `--backend=nda`).
 */

#include <cmath>
#include <memory>

#include "bench_common.h"
#include "energy/model.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

energy::DramActivity
activityOf(const arch::RankResult &r, double seconds)
{
    energy::DramActivity a;
    a.reads = r.dram_reads;
    a.writes = r.dram_writes;
    a.activates = r.dram_acts;
    a.refreshes = r.dram_refs;
    a.seconds = seconds;
    return a;
}

/** Per-rank logic power of a registry backend (Table 4/5 synthesis). */
double
logicPowerOf(const std::string &backend)
{
    if (backend == "enmc")
        return energy::enmcLogicPower();
    if (backend == "nda")
        return energy::ndaLogic().power_mw;
    if (backend == "chameleon")
        return energy::chameleonLogic().power_mw;
    if (backend == "tensordimm")
        return energy::tensorDimmLogic().power_mw;
    if (backend == "tensordimm-large")
        return energy::tensorDimmLargeLogic().power_mw;
    ENMC_FATAL("no logic-power model for backend '", backend, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string only = parseBackendFlag(argc, argv);
    // TensorDIMM always runs: it is the normalization baseline.
    std::vector<std::string> names{"tensordimm"};
    if (only.empty()) {
        names.push_back("tensordimm-large");
        names.push_back("enmc");
    } else if (only != "tensordimm") {
        names.push_back(only);
    }

    std::vector<std::unique_ptr<runtime::Backend>> backends;
    for (const auto &n : names)
        backends.push_back(runtime::createBackend(n));

    printHeader("Figure 14: energy breakdown normalized to TensorDIMM");
    printRow({"workload", "scheme", "static", "access", "logic", "total"},
             18);

    std::vector<double> geo(names.size(), 0.0);
    int n = 0;

    for (const auto &w : workloads::table2Workloads()) {
        const runtime::JobSpec spec = jobSpecFor(w, 1, true);

        std::vector<energy::EnergyBreakdown> breakdowns;
        for (size_t b = 0; b < backends.size(); ++b) {
            runtime::TimingResult r;
            const double seconds = backendSeconds(*backends[b], spec, &r);
            breakdowns.push_back(energy::rankEnergy(
                activityOf(r.rank, seconds), logicPowerOf(names[b])));
        }

        const double norm = breakdowns[0].total(); // TensorDIMM
        for (size_t b = 0; b < backends.size(); ++b) {
            const auto &e = breakdowns[b];
            printRow({w.abbr, names[b], fmt(e.dram_static_j / norm, "%.3f"),
                      fmt(e.dram_access_j / norm, "%.3f"),
                      fmt(e.logic_j / norm, "%.3f"),
                      fmt(e.total() / norm, "%.3f")},
                     18);
            geo[b] += std::log(breakdowns[0].total() / e.total());
        }
        ++n;
    }

    std::printf("\ngeomean energy reduction vs TensorDIMM:\n");
    for (size_t b = 1; b < names.size(); ++b)
        std::printf("  %-18s %.1fx%s\n", names[b].c_str(),
                    std::exp(geo[b] / n),
                    names[b] == "enmc"
                        ? " (paper: 5.0x; 8.4x vs TensorDIMM-Large)"
                        : "");
    std::printf(
        "\nPaper shape (Fig. 14): ENMC cuts both the access component\n"
        "(INT4 screening, no psum spill) and the static component (shorter\n"
        "runtime -> less refresh/standby energy); TensorDIMM-Large burns\n"
        "more logic power for its extra lanes.\n");
    return 0;
}
