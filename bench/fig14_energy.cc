/**
 * @file
 * Reproduces paper Fig. 14: energy breakdown (DRAM static, DRAM access,
 * computation & control logic) of ENMC vs TensorDIMM and
 * TensorDIMM-Large, normalized to TensorDIMM.
 *
 * The paper's two sources of ENMC's reduction: (1) INT4 low-dimensional
 * screening + no partial-sum spill cuts DRAM accesses; (2) the shorter
 * runtime cuts DRAM background (refresh/standby) energy.
 */

#include <cmath>

#include "bench_common.h"
#include "energy/model.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

energy::DramActivity
activityOf(const arch::RankResult &r, double seconds)
{
    energy::DramActivity a;
    a.reads = r.dram_reads;
    a.writes = r.dram_writes;
    a.activates = r.dram_acts;
    a.refreshes = r.dram_refs;
    a.seconds = seconds;
    return a;
}

} // namespace

int
main()
{
    printHeader("Figure 14: energy breakdown normalized to TensorDIMM");
    printRow({"workload", "scheme", "static", "access", "logic", "total"},
             12);

    double geo_td = 0.0, geo_tdl = 0.0;
    int n = 0;

    for (const auto &w : workloads::table2Workloads()) {
        const runtime::JobSpec spec = jobSpecFor(w, 1, true);

        arch::RankResult td_r, tdl_r;
        const double td_s =
            nmpSeconds(nmp::EngineConfig::tensorDimm(), spec, &td_r);
        const double tdl_s =
            nmpSeconds(nmp::EngineConfig::tensorDimmLarge(), spec, &tdl_r);
        runtime::TimingResult enmc_r;
        const double enmc_s = enmcSeconds(spec, &enmc_r);

        const auto e_td = energy::rankEnergy(
            activityOf(td_r, td_s), energy::tensorDimmLogic().power_mw);
        const auto e_tdl = energy::rankEnergy(
            activityOf(tdl_r, tdl_s),
            energy::tensorDimmLargeLogic().power_mw);
        const auto e_enmc = energy::rankEnergy(
            activityOf(enmc_r.rank, enmc_s), energy::enmcLogicPower());

        const double norm = e_td.total();
        auto row = [&](const char *name, const energy::EnergyBreakdown &e) {
            printRow({w.abbr, name, fmt(e.dram_static_j / norm, "%.3f"),
                      fmt(e.dram_access_j / norm, "%.3f"),
                      fmt(e.logic_j / norm, "%.3f"),
                      fmt(e.total() / norm, "%.3f")},
                     12);
        };
        row("TensorDIMM", e_td);
        row("TD-Large", e_tdl);
        row("ENMC", e_enmc);

        geo_td += std::log(e_td.total() / e_enmc.total());
        geo_tdl += std::log(e_tdl.total() / e_enmc.total());
        ++n;
    }

    std::printf("\ngeomean energy reduction of ENMC:\n");
    std::printf("  vs TensorDIMM:       %.1fx (paper: 5.0x)\n",
                std::exp(geo_td / n));
    std::printf("  vs TensorDIMM-Large: %.1fx (paper: 8.4x)\n",
                std::exp(geo_tdl / n));
    std::printf(
        "\nPaper shape (Fig. 14): ENMC cuts both the access component\n"
        "(INT4 screening, no psum spill) and the static component (shorter\n"
        "runtime -> less refresh/standby energy); TensorDIMM-Large burns\n"
        "more logic power for its extra lanes.\n");
    return 0;
}
