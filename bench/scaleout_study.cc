/**
 * @file
 * Scale-out study (paper Section 8's envisioned extension): distributed
 * ENMC nodes, each holding a screener + classifier partition, for the
 * S100M-class problems that exceed one node's pooled memory.
 *
 * Sweeps node count on three problem sizes and reports the timing
 * decomposition (broadcast / local classification / gather), speedup and
 * parallel efficiency, locating where the network overtakes the benefit.
 */

#include <cmath>

#include "bench_common.h"
#include "runtime/scaleout.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    printHeader("Scale-out ENMC: nodes sweep (100 Gb/s network)");
    printRow({"dataset", "nodes", "bcast-us", "class-us", "gather-us",
              "total-us", "speedup", "efficiency"},
             12);

    for (const char *abbr : {"XMLCNN-670K", "S10M", "S100M"}) {
        const workloads::Workload w = workloads::findWorkload(abbr);
        const runtime::JobSpec spec = jobSpecFor(w, 1, true);

        runtime::ScaleOutConfig solo_cfg;
        solo_cfg.nodes = 1;
        const auto solo = runtime::runScaleOut(solo_cfg, spec);

        for (uint64_t nodes : {1ull, 2ull, 4ull, 8ull, 16ull, 32ull}) {
            runtime::ScaleOutConfig cfg;
            cfg.nodes = nodes;
            const auto r = runtime::runScaleOut(cfg, spec);
            const double speedup = solo.total() / r.total();
            printRow({abbr, std::to_string(nodes),
                      fmt(1e6 * r.broadcast_seconds, "%.2f"),
                      fmt(1e6 * r.classification_seconds, "%.1f"),
                      fmt(1e6 * r.gather_seconds, "%.2f"),
                      fmt(1e6 * r.total(), "%.1f"),
                      fmt(speedup, "%.2f"),
                      fmt(speedup / nodes, "%.2f")},
                     12);
        }
    }

    std::printf(
        "\nFinding: the 100M-category problems scale near-linearly to 8-16\n"
        "nodes (the per-node classification still dwarfs the fixed network\n"
        "cost), while at 670K categories efficiency collapses past a few\n"
        "nodes — scale-out pays exactly when a single node's pooled memory\n"
        "is the binding constraint, matching the paper's motivation.\n");
    return 0;
}
