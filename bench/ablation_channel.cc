/**
 * @file
 * Channel-level ablation: the shared C/A instruction bus vs the hardware
 * tile sequencer.
 *
 * The paper issues ENMC instructions through PRECHARGE commands on the
 * host channel (Section 5.3) and gives the ENMC controller an instruction
 * generator (Section 5.2). This experiment shows *why* on-DIMM generation
 * matters: with 8 ranks per channel and a naive per-tile instruction
 * stream (3 instructions / ~7 C/A+DQ cycles per 2-row tile), the single
 * C/A slot per cycle cannot feed 8 ranks, and screening throughput
 * collapses. With the tile sequencer (Mode bit 0) the host sends a
 * constant-size program per rank and the bottleneck disappears.
 */

#include <cmath>

#include "bench_common.h"
#include "runtime/channel_sim.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    printHeader("Ablation: shared C/A bus vs hardware tile sequencer");
    printRow({"ranks", "mode", "cycles", "per-rank-x", "C/A-util"});

    const uint64_t l_per_rank = 32 * 1024; // rows per rank slice
    runtime::SystemConfig base;
    runtime::SystemConfig seq = base;
    seq.enmc.hw_tile_sequencer = true;

    // Private-bus reference: one rank alone.
    runtime::ChannelSim solo(base, 1);
    runtime::JobSpec solo_spec;
    solo_spec.categories = l_per_rank;
    solo_spec.hidden = 512;
    solo_spec.reduced = 128;
    solo_spec.batch = 1;
    solo_spec.candidates = 16;
    const auto ref = solo.run(solo_spec);

    for (uint32_t ranks : {1u, 2u, 4u, 8u}) {
        runtime::JobSpec spec = solo_spec;
        spec.categories = l_per_rank * ranks;
        spec.candidates = 16 * ranks;
        for (bool hw : {false, true}) {
            runtime::ChannelSim sim(hw ? seq : base, ranks);
            const auto r = sim.run(spec);
            printRow({std::to_string(ranks),
                      hw ? "sequencer" : "per-tile",
                      fmt(double(r.cycles), "%.0f"),
                      fmt(double(r.cycles) / ref.cycles, "%.2f"),
                      fmt(100 * r.caUtilization(), "%.1f%%")});
        }
    }

    std::printf(
        "\nFinding: per-tile host instruction streams saturate the shared\n"
        "C/A bus beyond ~2 ranks per channel (utilization -> 100%%, per-rank\n"
        "time inflates several-fold); the on-DIMM tile sequencer keeps all\n"
        "8 ranks at private-bus speed with <20%% C/A utilization. This is\n"
        "the quantitative case for the ENMC controller's instruction\n"
        "generator in the paper's Fig. 7.\n");
    return 0;
}
