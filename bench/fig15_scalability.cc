/**
 * @file
 * Reproduces paper Fig. 15: end-to-end performance scalability on the
 * synthetic S1M / S10M / S100M datasets (plus XMLCNN-670K as the anchor),
 * all with the XMLCNN front-end, for TensorDIMM, TensorDIMM-Large and
 * ENMC, normalized to the CPU baseline.
 *
 * End-to-end = front-end feature extraction on the host (compute-bound,
 * identical across schemes) + classification on the evaluated scheme.
 */

#include <cmath>

#include "bench_common.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    printHeader("Figure 15: end-to-end scalability (normalized to CPU)");
    printRow({"dataset", "TensorDIMM", "TD-Large", "ENMC", "ENMC/TD",
              "ENMC/TDL"});

    nmp::CpuConfig cpu;
    double geo_td = 0.0, geo_tdl = 0.0;
    int n = 0;

    std::vector<workloads::Workload> sets;
    sets.push_back(workloads::findWorkload("XMLCNN-670K"));
    for (auto &w : workloads::scalabilityWorkloads())
        sets.push_back(w);

    for (const auto &w : sets) {
        // Baselines select candidates host-side at the conservative
        // budget; ENMC's FILTER applies the tightened one.
        const runtime::JobSpec spec = jobSpecFor(w, 1);
        const runtime::JobSpec enmc_spec = jobSpecFor(w, 1, true);
        // Front-end time on the host (runs in every configuration): the
        // XMLCNN conv stack slides over a whole document (~512 token
        // positions) before one classification, so the end-to-end number
        // carries a fixed front-end cost that amortizes as the
        // classification side scales — the source of Fig. 15's growth.
        const uint64_t doc_positions = 512;
        const double fe_seconds =
            2.0 * w.frontend.hiddenParams() * doc_positions /
            cpu.peakFlops();

        const double cpu_e2e = fe_seconds + cpuFullSeconds(spec);
        const double td_e2e =
            fe_seconds + nmpSeconds(nmp::EngineConfig::tensorDimm(), spec);
        const double tdl_e2e =
            fe_seconds +
            nmpSeconds(nmp::EngineConfig::tensorDimmLarge(), spec);
        const double enmc_e2e = fe_seconds + enmcSeconds(enmc_spec);

        printRow({w.abbr, fmt(cpu_e2e / td_e2e, "%.1f"),
                  fmt(cpu_e2e / tdl_e2e, "%.1f"),
                  fmt(cpu_e2e / enmc_e2e, "%.1f"),
                  fmt(td_e2e / enmc_e2e, "%.2f"),
                  fmt(tdl_e2e / enmc_e2e, "%.2f")});
        geo_td += std::log(td_e2e / enmc_e2e);
        geo_tdl += std::log(tdl_e2e / enmc_e2e);
        ++n;
    }

    std::printf("\ngeomean ENMC advantage: %.1fx vs TensorDIMM (paper 4.7x),"
                " %.1fx vs TensorDIMM-Large (paper 2.9x)\n",
                std::exp(geo_td / n), std::exp(geo_tdl / n));
    std::printf(
        "\nPaper shape (Fig. 15): ENMC's lead over TensorDIMM(-Large) grows\n"
        "with category count (paper: 2.2x/1.6x on the smaller datasets ->\n"
        "7.1x/4.2x on the largest) because ENMC streams the lightweight\n"
        "classification without buffering intermediates back to DRAM.\n");
    return 0;
}
