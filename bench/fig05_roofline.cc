/**
 * @file
 * Reproduces paper Fig. 5:
 *  (a) classifier memory footprint and CPU execution time scale linearly
 *      with the number of categories;
 *  (b) roofline placement of approximate screening, candidate-only
 *      classification, and the front-end networks on the CPU baseline —
 *      screening and candidate-only classification sit far below the
 *      machine-balance point (memory-bound), front-ends sit near or above
 *      it (compute-bound).
 */

#include <cmath>

#include "bench_common.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    nmp::CpuConfig cpu;

    printHeader("Figure 5(a): footprint & CPU time vs category count");
    printRow({"categories", "footprint-MB", "cpu-ms(d=512)",
              "cpu-ms(d=1024)"});
    for (uint64_t l : {10'000ull, 100'000ull, 1'000'000ull, 10'000'000ull,
                       100'000'000ull}) {
        const double mb512 = l * 512.0 * 4 / 1e6;
        printRow({fmt(double(l), "%.0f"), fmt(mb512, "%.1f"),
                  fmt(1e3 * nmp::cpuFullClassificationTime(cpu, l, 512, 1),
                      "%.3f"),
                  fmt(1e3 * nmp::cpuFullClassificationTime(cpu, l, 1024, 1),
                      "%.3f")});
    }

    printHeader("Figure 5(b): roofline points (CPU baseline)");
    const double balance =
        cpu.peakFlops() / cpu.achievableBandwidth(); // flops per byte
    std::printf("machine balance: %.1f FLOP/B\n\n", balance);
    printRow({"component", "workload", "FLOP/B", "bound", "GFLOP/s"});

    for (const auto &w : workloads::table2Workloads()) {
        const runtime::JobSpec spec = jobSpecFor(w, 1);
        // Screening: INT4 weights.
        const double screen_flops = 2.0 * spec.categories * spec.reduced;
        const double screen_bytes =
            spec.categories * spec.reduced / 2.0 +
            spec.categories * 4.0;
        // Candidate-only classification.
        const double cand_flops = 2.0 * spec.candidates * spec.hidden;
        const double cand_bytes = spec.candidates * spec.hidden * 4.0;
        // Front-end network: weights are reused across the sequence steps
        // of one inference (darker batch points in the paper's figure
        // raise this further), so the operational intensity is per-step
        // flops x steps over one weight fetch.
        const double fe_steps = 64.0;
        const double fe_flops =
            double(w.frontend.flopsPerStep()) * fe_steps;
        const double fe_bytes = double(w.frontend.params()) * 4.0;

        auto row = [&](const char *name, double flops, double bytes) {
            const double oi = flops / bytes;
            const double gflops =
                std::min(cpu.peakFlops(), oi * cpu.achievableBandwidth()) /
                1e9;
            printRow({name, w.abbr, fmt(oi, "%.2f"),
                      oi < balance ? "memory" : "compute",
                      fmt(gflops, "%.0f")});
        };
        row("screening", screen_flops, screen_bytes);
        row("candidates", cand_flops, cand_bytes);
        row("front-end", fe_flops, fe_bytes);
    }
    std::printf(
        "\nPaper shape: screening and candidate-only classification are\n"
        "memory-bound (low operational intensity) even after eliminating\n"
        "redundant computation, while the front-end models sit at or near\n"
        "the compute roof — the opportunity for NMP.\n");
    return 0;
}
