/**
 * @file
 * Accuracy and latency vs raw bit-error rate under the fault + ECC model.
 *
 * Sweeps the functional ENMC system (resilient backend: SECDED + retry +
 * degradation) across bit-error rates with ECC on and off, measuring P@1
 * and candidate recall against exact full classification, plus the fault
 * counters and the rank latency (which includes retry backoff). A final
 * scenario sticks one rank at and shows the blacklisting path: the job
 * repartitions across the survivors and keeps answering.
 *
 * The second half maps the reliability-vs-effective-bandwidth frontier:
 * protection policy (per-word SECDED everywhere, block codes everywhere,
 * differentiated weak=none, or ECC off) x raw BER, with the ECC overhead
 * model charging redundancy reads and decode latency on the DDR clock.
 * `--check` asserts the default operating point: at BER 1e-3 the
 * differentiated policy holds P@1 within 0.5% of protect-everything
 * while consuming measurably less redundancy-read bandwidth than
 * per-word SECDED(72,64).
 *
 * Flags:
 *   --json=<path>            additionally write the sweep as JSON
 *   --frontier-json=<path>   write the frontier as JSON (CI artifact)
 *   --check                  assert the frontier acceptance criteria
 *   --seed=<n>               fault-injection seed (default 1)
 *   --batch=<n>              items per batch (default 64; large enough
 *                            that the batched features overflow the
 *                            feature buffer and re-stream with every
 *                            tile, so the weak path carries a realistic
 *                            share of the DRAM traffic)
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/ecc.h"
#include "obs/metrics.h"
#include "obs/percentiles.h"
#include "runtime/resilience.h"
#include "runtime/system.h"
#include "screening/metrics.h"
#include "screening/pipeline.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

namespace enmc::bench {
namespace {

constexpr uint64_t kCategories = 2048;
constexpr uint64_t kHidden = 64;
constexpr uint64_t kBudget = 48;   //!< candidate budget / FILTER tuning
constexpr size_t kRecallK = 10;
constexpr uint64_t kRanks = 4;

struct SweepPoint
{
    double ber = 0.0;
    bool ecc = true;
    double p_at_1 = 0.0;
    double recall = 0.0;
    Cycles rank_cycles = 0;      //!< slowest slice (the job's latency)
    Cycles p50_cycles = 0;       //!< median slice (nearest rank)
    fault::FaultCounters faults;
    uint64_t uncorrectable_words = 0;
    uint64_t degraded_candidates = 0;
};

struct Model
{
    std::unique_ptr<workloads::SyntheticModel> synthetic;
    std::unique_ptr<screening::Screener> screener;
    std::vector<tensor::Vector> h_batch;
    std::vector<tensor::Vector> exact; //!< full-classification logits
};

Model
buildModel(uint64_t batch)
{
    Model m;
    workloads::SyntheticConfig wcfg;
    wcfg.categories = kCategories;
    wcfg.hidden = kHidden;
    m.synthetic = std::make_unique<workloads::SyntheticModel>(wcfg);

    screening::ScreenerConfig scfg;
    scfg.categories = kCategories;
    scfg.hidden = kHidden;
    scfg.selection = screening::SelectionMode::Threshold;
    Rng rng(3);
    m.screener = std::make_unique<screening::Screener>(scfg, rng);

    Rng data = m.synthetic->makeRng(1);
    const auto train = m.synthetic->sampleHiddenBatch(data, 160);
    screening::Trainer trainer(m.synthetic->classifier(), *m.screener,
                               screening::TrainerConfig{});
    trainer.train(train, {});
    m.screener->freezeQuantized();
    const float cut = screening::tuneThreshold(*m.screener, train, kBudget);
    m.screener->setSelection(screening::SelectionMode::Threshold, kBudget,
                             cut);

    m.h_batch = m.synthetic->sampleHiddenBatch(data, batch);
    const screening::Pipeline pipe(m.synthetic->classifier(), *m.screener);
    for (const auto &h : m.h_batch)
        m.exact.push_back(pipe.inferFull(h).logits);
    return m;
}

SweepPoint
runPoint(const Model &m, uint64_t seed, double ber, bool ecc)
{
    runtime::SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = seed;
    cfg.fault.data_ber = ber;
    cfg.fault.ecc = ecc;
    cfg.resilient = true; // retry-with-backoff + degradation
    runtime::EnmcSystem sys(cfg);
    const auto out = sys.runFunctional(m.synthetic->classifier(),
                                       *m.screener, m.h_batch, kRanks);
    SweepPoint p;
    p.ber = ber;
    p.ecc = ecc;
    p.p_at_1 = screening::precisionAt1(m.exact, out.logits);
    p.recall = screening::candidateRecallAtK(m.exact, out.candidates,
                                             kRecallK);
    p.rank_cycles = out.rank_cycles;
    if (!out.slice_cycles.empty()) {
        std::vector<double> cycles(out.slice_cycles.begin(),
                                   out.slice_cycles.end());
        p.p50_cycles = static_cast<Cycles>(
            obs::Percentiles(std::move(cycles)).at(0.50));
    }
    p.faults = out.faults;
    p.uncorrectable_words = out.uncorrectable_words;
    p.degraded_candidates = out.degraded_candidates;
    return p;
}

/** A protection policy: which ECC scheme guards each access class. */
struct Policy
{
    const char *name;
    bool ecc = true;                //!< master switch (off => no codec)
    fault::EccScheme strong = fault::EccScheme::Word72;
    fault::EccScheme weak = fault::EccScheme::Word72;
    bool retry_weak = true;         //!< re-read weak-class erasures?
};

/** The frontier's policy axis, uniform-strongest to unprotected. */
constexpr Policy kPolicies[] = {
    {"secded72-all", true, fault::EccScheme::Word72,
     fault::EccScheme::Word72, true},
    {"block512-all", true, fault::EccScheme::Block512B,
     fault::EccScheme::Block512B, true},
    {"block1k-all", true, fault::EccScheme::Block1KB,
     fault::EccScheme::Block1KB, true},
    {"block4k-all", true, fault::EccScheme::Block4KB,
     fault::EccScheme::Block4KB, true},
    {"diff-weak-none", true, fault::EccScheme::Word72,
     fault::EccScheme::None, false},
    {"off", false, fault::EccScheme::Word72, fault::EccScheme::Word72,
     true},
};

struct FrontierPoint
{
    const Policy *policy = nullptr;
    double ber = 0.0;
    double p_at_1 = 0.0;
    double recall = 0.0;
    Cycles rank_cycles = 0;
    double bw_fraction = 1.0; //!< clean cycles / policy cycles (<= 1)
    uint64_t redundancy_reads = 0;
    uint64_t decode_cycles = 0;
    uint64_t uncorrectable_weak = 0;
    uint64_t uncorrectable_strong = 0;
    bool balanced = false;
};

FrontierPoint
runFrontierPoint(const Model &m, uint64_t seed, const Policy &pol,
                 double ber, Cycles clean_cycles)
{
    runtime::SystemConfig cfg;
    cfg.fault.enabled = true;
    cfg.fault.seed = seed;
    cfg.fault.data_ber = ber;
    cfg.fault.ecc = pol.ecc;
    cfg.fault.strong_scheme = pol.strong;
    cfg.fault.weak_scheme = pol.weak;
    cfg.fault.ecc_overhead = true; // charge redundancy + decode latency
    cfg.resilient = true;
    cfg.resilience.retry_weak = pol.retry_weak;
    runtime::EnmcSystem sys(cfg);
    const auto out = sys.runFunctional(m.synthetic->classifier(),
                                       *m.screener, m.h_batch, kRanks);
    FrontierPoint p;
    p.policy = &pol;
    p.ber = ber;
    p.p_at_1 = screening::precisionAt1(m.exact, out.logits);
    p.recall = screening::candidateRecallAtK(m.exact, out.candidates,
                                             kRecallK);
    p.rank_cycles = out.rank_cycles;
    if (out.rank_cycles > 0)
        p.bw_fraction = static_cast<double>(clean_cycles) /
                        static_cast<double>(out.rank_cycles);
    p.redundancy_reads = out.ecc_redundancy_reads;
    p.decode_cycles = out.ecc_decode_cycles;
    p.uncorrectable_weak = out.uncorrectable_weak_words;
    p.uncorrectable_strong = out.uncorrectable_strong_words;
    p.balanced = out.faults.classesBalanced();
    return p;
}

void
writeFrontierJson(const std::string &path, uint64_t seed, uint64_t batch,
                  const std::vector<FrontierPoint> &frontier,
                  const char *operating_point, double design_ber)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        ENMC_FATAL("cannot open ", path, " for writing");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", seed);
    std::fprintf(f, "  \"batch\": %" PRIu64 ",\n", batch);
    std::fprintf(f, "  \"design_ber\": %.3e,\n", design_ber);
    std::fprintf(f, "  \"operating_point\": \"%s\",\n", operating_point);
    std::fprintf(f, "  \"frontier\": [\n");
    for (size_t i = 0; i < frontier.size(); ++i) {
        const FrontierPoint &p = frontier[i];
        std::fprintf(
            f,
            "    {\"policy\": \"%s\", \"strong\": \"%s\", "
            "\"weak\": \"%s\", \"ber\": %.3e, \"p_at_1\": %.6f, "
            "\"recall_at_%zu\": %.6f, \"rank_cycles\": %" PRIu64 ", "
            "\"bw_fraction\": %.6f, \"redundancy_reads\": %" PRIu64 ", "
            "\"decode_cycles\": %" PRIu64 ", \"uncorrectable_weak\": "
            "%" PRIu64 ", \"uncorrectable_strong\": %" PRIu64 "}%s\n",
            p.policy->name,
            fault::eccSchemeName(p.policy->ecc ? p.policy->strong
                                               : fault::EccScheme::None),
            fault::eccSchemeName(p.policy->ecc ? p.policy->weak
                                               : fault::EccScheme::None),
            p.ber, p.p_at_1, kRecallK, p.recall,
            static_cast<uint64_t>(p.rank_cycles), p.bw_fraction,
            p.redundancy_reads, p.decode_cycles, p.uncorrectable_weak,
            p.uncorrectable_strong, i + 1 < frontier.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

bool
parseBoolFlag(int argc, char **argv, const char *name)
{
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i)
        if (flag == argv[i])
            return true;
    return false;
}

uint64_t
parseFlag(int argc, char **argv, const char *name, uint64_t fallback)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    return fallback;
}

std::string
parseJsonPath(int argc, char **argv, const char *name)
{
    const std::string prefix = std::string("--") + name + "=";
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return argv[i] + prefix.size();
    return "";
}

void
writeJson(const std::string &path, uint64_t seed, uint64_t batch,
          double fault_free_p1, double fault_free_recall,
          Cycles fault_free_cycles, const std::vector<SweepPoint> &sweep,
          const SweepPoint &blacklist, uint64_t healthy_ranks,
          double job_seconds_all, double job_seconds_degraded)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        ENMC_FATAL("cannot open ", path, " for writing");
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"seed\": %" PRIu64 ",\n", seed);
    std::fprintf(f, "  \"batch\": %" PRIu64 ",\n", batch);
    std::fprintf(f, "  \"fault_free\": {\"p_at_1\": %.6f, "
                    "\"recall_at_%zu\": %.6f, \"rank_cycles\": %" PRIu64
                    "},\n",
                 fault_free_p1, kRecallK, fault_free_recall,
                 static_cast<uint64_t>(fault_free_cycles));
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint &p = sweep[i];
        std::fprintf(
            f,
            "    {\"ber\": %.3e, \"ecc\": %s, \"p_at_1\": %.6f, "
            "\"recall_at_%zu\": %.6f, \"rank_cycles\": %" PRIu64 ", "
            "\"slice_cycles_p50\": %" PRIu64 ", "
            "\"injected_words\": %" PRIu64 ", \"injected_bits\": %" PRIu64
            ", \"corrected\": %" PRIu64 ", \"detected\": %" PRIu64
            ", \"escaped\": %" PRIu64 ", \"uncorrectable_words\": %" PRIu64
            ", \"degraded_candidates\": %" PRIu64 ", \"retries\": %" PRIu64
            "}%s\n",
            p.ber, p.ecc ? "true" : "false", p.p_at_1, kRecallK, p.recall,
            static_cast<uint64_t>(p.rank_cycles),
            static_cast<uint64_t>(p.p50_cycles), p.faults.injected_words,
            p.faults.injected_bits, p.faults.corrected, p.faults.detected,
            p.faults.escaped, p.uncorrectable_words, p.degraded_candidates,
            p.faults.inst_dropped + p.faults.inst_corrupted,
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"blacklist\": {\"stuck_rank\": 1, \"healthy_ranks\": "
                 "%" PRIu64 ", \"p_at_1\": %.6f, \"recall_at_%zu\": %.6f, "
                 "\"stuck_reads\": %" PRIu64 ", \"job_seconds_all\": %.9f, "
                 "\"job_seconds_degraded\": %.9f}\n",
                 healthy_ranks, blacklist.p_at_1, kRecallK, blacklist.recall,
                 blacklist.faults.stuck_reads, job_seconds_all,
                 job_seconds_degraded);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

int
run(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "fault_sweep");
    const uint64_t seed = parseFlag(argc, argv, "seed", 1);
    const uint64_t batch = parseFlag(argc, argv, "batch", 64);
    const std::string json_path = parseJsonPath(argc, argv, "json");
    const std::string frontier_path =
        parseJsonPath(argc, argv, "frontier-json");
    const bool check = parseBoolFlag(argc, argv, "check");

    const Model m = buildModel(batch);

    // Fault-free reference: the approximate pipeline with pristine memory.
    runtime::EnmcSystem clean{runtime::SystemConfig{}};
    const auto clean_out = clean.runFunctional(m.synthetic->classifier(),
                                               *m.screener, m.h_batch,
                                               kRanks);
    const double clean_p1 =
        screening::precisionAt1(m.exact, clean_out.logits);
    const double clean_recall = screening::candidateRecallAtK(
        m.exact, clean_out.candidates, kRecallK);

    printHeader("Fault sweep: accuracy vs bit-error rate (SECDED + retry)");
    std::printf("model: l=%" PRIu64 " d=%" PRIu64 " batch=%" PRIu64
                " ranks=%" PRIu64 " seed=%" PRIu64 "\n",
                kCategories, kHidden, batch, kRanks, seed);
    std::printf("fault-free: P@1=%.3f recall@%zu=%.3f cycles=%" PRIu64
                "\n\n",
                clean_p1, kRecallK, clean_recall,
                static_cast<uint64_t>(clean_out.rank_cycles));
    printRow({"BER", "ECC", "P@1", "recall", "inj.w", "corr", "det", "esc",
              "degr", "cycles", "p50cyc"},
             9);

    const double bers[] = {1e-9, 1e-6, 1e-5, 1e-4, 1e-3};
    std::vector<SweepPoint> sweep;
    for (const double ber : bers) {
        for (const bool ecc : {true, false}) {
            const SweepPoint p = runPoint(m, seed, ber, ecc);
            printRow({fmt(p.ber, "%.0e"), p.ecc ? "on" : "off",
                      fmt(p.p_at_1, "%.3f"), fmt(p.recall, "%.3f"),
                      std::to_string(p.faults.injected_words),
                      std::to_string(p.faults.corrected),
                      std::to_string(p.faults.detected),
                      std::to_string(p.faults.escaped),
                      std::to_string(p.degraded_candidates),
                      std::to_string(p.rank_cycles),
                      std::to_string(p.p50_cycles)},
                     9);
            sweep.push_back(p);
        }
    }

    // Stuck rank 1: the resilient backend blacklists it and repartitions
    // across the survivors — the system keeps answering.
    runtime::SystemConfig bcfg;
    bcfg.fault.enabled = true;
    bcfg.fault.seed = seed;
    bcfg.fault.stuck_ranks = {1};
    const runtime::ResilientBackend resilient(bcfg);
    const auto degraded = resilient.runFunctionalJob(
        m.synthetic->classifier(), *m.screener, m.h_batch, kRanks);
    SweepPoint bp;
    bp.p_at_1 = screening::precisionAt1(m.exact, degraded.logits);
    bp.recall = screening::candidateRecallAtK(m.exact, degraded.candidates,
                                              kRecallK);
    bp.faults = degraded.faults;

    // Latency cost of losing the rank, at job scale.
    runtime::JobSpec spec;
    spec.categories = 500000;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.candidates = 10000;
    const double t_all =
        runtime::EnmcBackend{runtime::SystemConfig{}}.runJob(spec).seconds;
    const double t_degraded = resilient.runJob(spec).seconds;
    const uint64_t healthy = resilient.healthyRanks().size();

    printHeader("Rank blacklisting (rank 1 stuck at)");
    std::printf("healthy ranks: %" PRIu64 "/%" PRIu64
                "  P@1=%.3f recall@%zu=%.3f (fault-free P@1=%.3f)\n",
                healthy, bcfg.totalRanks(), bp.p_at_1, kRecallK, bp.recall,
                clean_p1);
    std::printf("job latency: all ranks %.3f ms -> degraded %.3f ms "
                "(%.1f%% slower)\n",
                t_all * 1e3, t_degraded * 1e3,
                100.0 * (t_degraded / t_all - 1.0));

    // ---- Reliability vs effective-bandwidth frontier -------------------
    // Policy x BER grid with the overhead model on: every point pays its
    // redundancy reads and decode latency, so rank_cycles is the
    // effective-bandwidth axis and P@1 the reliability axis.
    constexpr double kDesignBer = 1e-3;
    const double frontier_bers[] = {1e-6, 1e-4, kDesignBer};

    // Overhead-model baseline: faults enabled at BER 0 with ECC off keeps
    // the data path identical to `clean` but through the same code path.
    printHeader("Protection frontier: policy x BER (overhead model on)");
    printRow({"policy", "BER", "P@1", "recall", "redund", "deccyc",
              "unc.w", "unc.s", "cycles", "bw"},
             9);
    std::vector<FrontierPoint> frontier;
    for (const Policy &pol : kPolicies) {
        for (const double ber : frontier_bers) {
            const FrontierPoint p = runFrontierPoint(
                m, seed, pol, ber, clean_out.rank_cycles);
            printRow({pol.name, fmt(p.ber, "%.0e"), fmt(p.p_at_1, "%.3f"),
                      fmt(p.recall, "%.3f"),
                      std::to_string(p.redundancy_reads),
                      std::to_string(p.decode_cycles),
                      std::to_string(p.uncorrectable_weak),
                      std::to_string(p.uncorrectable_strong),
                      std::to_string(p.rank_cycles),
                      fmt(p.bw_fraction, "%.3f")},
                     9);
            frontier.push_back(p);
        }
    }

    // Default operating point: cheapest policy that (a) keeps strong-class
    // data under ECC and (b) holds P@1 within 0.5% of protect-everything
    // at the design BER. Cost is redundancy-read bandwidth, then cycles.
    const auto at = [&](const char *name, double ber) -> const FrontierPoint & {
        for (const FrontierPoint &p : frontier)
            if (std::strcmp(p.policy->name, name) == 0 && p.ber == ber)
                return p;
        ENMC_FATAL("frontier point missing: ", name);
    };
    const FrontierPoint &all_pt = at("secded72-all", kDesignBer);
    const FrontierPoint *best = nullptr;
    for (const FrontierPoint &p : frontier) {
        if (p.ber != kDesignBer || !p.policy->ecc)
            continue;
        if (p.policy->strong == fault::EccScheme::None)
            continue;
        if (p.p_at_1 < all_pt.p_at_1 - 0.005 - 1e-12)
            continue;
        if (best == nullptr ||
            p.redundancy_reads < best->redundancy_reads ||
            (p.redundancy_reads == best->redundancy_reads &&
             p.rank_cycles < best->rank_cycles))
            best = &p;
    }
    if (best == nullptr)
        ENMC_FATAL("no policy holds P@1 at the design BER");
    std::printf("\noperating point @ BER %.0e: %s "
                "(P@1=%.3f vs protect-all %.3f, redundancy %" PRIu64
                " vs %" PRIu64 ")\n",
                kDesignBer, best->policy->name, best->p_at_1,
                all_pt.p_at_1, best->redundancy_reads,
                all_pt.redundancy_reads);

    int failures = 0;
    if (check) {
        const auto expect = [&failures](bool ok, const char *what) {
            std::printf("check: %-58s %s\n", what, ok ? "ok" : "FAIL");
            if (!ok)
                ++failures;
        };
        const FrontierPoint &diff_pt = at("diff-weak-none", kDesignBer);
        expect(diff_pt.p_at_1 >= all_pt.p_at_1 - 0.005 - 1e-12,
               "differentiated P@1 within 0.5% of protect-everything");
        expect(diff_pt.redundancy_reads < all_pt.redundancy_reads,
               "differentiated redundancy reads < per-word SECDED");
        expect(diff_pt.redundancy_reads > 0,
               "strong class still pays for its protection");
        expect(std::strcmp(best->policy->name, "diff-weak-none") == 0,
               "default operating point is strong=word72 weak=none");
        bool balanced = true;
        for (const FrontierPoint &p : frontier)
            balanced = balanced && p.balanced;
        expect(balanced, "per-class fault accounting balances everywhere");
        if (failures == 0)
            std::printf("\nall frontier checks passed\n");
        else
            std::printf("\n%d frontier check(s) FAILED\n", failures);
    }

    if (!json_path.empty())
        writeJson(json_path, seed, batch, clean_p1, clean_recall,
                  clean_out.rank_cycles, sweep, bp, healthy, t_all,
                  t_degraded);
    if (!frontier_path.empty())
        writeFrontierJson(frontier_path, seed, batch, frontier,
                          best->policy->name, kDesignBer);
    obs::writeMetrics(metrics);
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace enmc::bench

int
main(int argc, char **argv)
{
    return enmc::bench::run(argc, argv);
}
