/**
 * @file
 * Reproduces paper Table 4: the NMP baselines and ENMC configured at a
 * matched area/power budget, plus the modeled microarchitectural
 * parameters each configuration maps to in the simulator.
 */

#include "bench_common.h"
#include "energy/model.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    printHeader("Table 4: NMP designs at matched area/power budget");
    printRow({"design", "area-mm2", "power-mW", "macs", "buffer-B",
              "gemv-eff@1"},
             20);

    struct Row
    {
        energy::LogicBlock logic;
        nmp::EngineConfig cfg;
    };
    const Row rows[] = {
        {energy::ndaLogic(), nmp::EngineConfig::nda()},
        {energy::chameleonLogic(), nmp::EngineConfig::chameleon()},
        {energy::tensorDimmLogic(), nmp::EngineConfig::tensorDimm()},
    };
    for (const auto &r : rows) {
        printRow({engineKindName(r.cfg.kind), fmt(r.logic.area_mm2, "%.3f"),
                  fmt(r.logic.power_mw, "%.1f"),
                  std::to_string(r.cfg.fp32_macs),
                  std::to_string(r.cfg.buffer_bytes * r.cfg.queues),
                  fmt(r.cfg.gemvEfficiency(1), "%.2f")},
                 20);
    }
    const auto enmc_l = energy::enmcLogic();
    printRow({"ENMC (ours)", fmt(enmc_l.area_mm2, "%.3f"),
              fmt(enmc_l.power_mw, "%.1f"), "16 FP32 + 128 INT4",
              "256*4", "1.00"},
             20);

    std::printf("\nPaper values: NDA 0.445/293.6, Chameleon 0.398/249.0,\n"
                "TensorDIMM 0.457/303.5, ENMC 0.442/285.4 (mm2 / mW).\n");
    return 0;
}
