/**
 * @file
 * Reproduces paper Fig. 4: the breakdown of model parameters and
 * operations into classification vs non-classification for every
 * workload. The paper's qualitative result: NLP classifiers consume a
 * significant share, and classification dominates as categories scale to
 * millions.
 */

#include "bench_common.h"
#include "workloads/breakdown.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    printHeader("Figure 4: parameters & operations breakdown");
    printRow({"workload", "cls-params", "fe-params", "param-share",
              "cls-flops", "fe-flops", "flop-share"});
    for (const auto &w : workloads::allWorkloads()) {
        const workloads::Breakdown b = workloads::computeBreakdown(w);
        printRow({w.abbr, fmt(double(b.classifier_params)),
                  fmt(double(b.frontend_params)),
                  fmt(100.0 * b.paramShare(), "%.1f%%"),
                  fmt(double(b.classifier_flops)),
                  fmt(double(b.frontend_flops)),
                  fmt(100.0 * b.flopShare(), "%.1f%%")});
    }
    std::printf(
        "\nPaper shape: significant classifier share for the NLP rows;\n"
        "classification dominates (>85%% of parameters) for XMLCNN-670K\n"
        "and the synthetic S* datasets.\n");
    return 0;
}
