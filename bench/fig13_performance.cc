/**
 * @file
 * Reproduces paper Fig. 13: classification performance of ENMC against
 * the CPU baseline (with and without approximate screening) and the three
 * NMP baselines (NDA, Chameleon, TensorDIMM) — all NMP schemes equipped
 * with approximate screening, batch sizes 1/2/4, normalized to the
 * full-classification CPU baseline.
 *
 * Every scheme is resolved through the backend registry; pass
 * `--backend=<name>` to run a single column (any registered backend).
 */

#include <cmath>
#include <memory>

#include "bench_common.h"
#include "obs/metrics.h"

using namespace enmc;
using namespace enmc::bench;

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "fig13_performance");
    const std::string only = parseBackendFlag(argc, argv);
    const std::vector<std::string> names =
        only.empty() ? std::vector<std::string>{"cpu", "nda", "chameleon",
                                                "tensordimm", "enmc"}
                     : std::vector<std::string>{only};

    std::vector<std::unique_ptr<runtime::Backend>> backends;
    for (const auto &n : names)
        backends.push_back(runtime::createBackend(n));
    const auto cpu_full_backend = runtime::createBackend("cpu-full");

    printHeader("Figure 13: speedup over full-classification CPU baseline");
    std::vector<std::string> header{"workload", "batch"};
    for (const auto &n : names)
        header.push_back(n);
    printRow(header, 18);

    std::vector<double> geo(names.size(), 0.0);
    int n = 0;

    for (const auto &w : workloads::table2Workloads()) {
        for (uint64_t batch : {1ull, 2ull, 4ull}) {
            const runtime::JobSpec spec = jobSpecFor(w, batch);
            // ENMC's on-DIMM threshold FILTER supports the tightened
            // candidate budget (the paper's "50x" note for XMLCNN); the
            // baselines select candidates after reading psums back, at
            // the conservative Fig. 11 budget.
            const runtime::JobSpec enmc_spec = jobSpecFor(w, batch, true);
            const double cpu_full =
                backendSeconds(*cpu_full_backend, spec);

            std::vector<std::string> row{w.abbr, std::to_string(batch)};
            for (size_t b = 0; b < backends.size(); ++b) {
                const bool filtered = backends[b]->name() == "enmc";
                const double t = backendSeconds(
                    *backends[b], filtered ? enmc_spec : spec);
                row.push_back(fmt(cpu_full / t, "%.1f"));
                geo[b] += std::log(cpu_full / t);
            }
            printRow(row, 18);
            ++n;
        }
    }

    std::printf("\ngeomean speedups over CPU-full:\n");
    std::vector<std::string> geo_row{"", ""};
    for (size_t b = 0; b < names.size(); ++b)
        geo_row.push_back(fmt(std::exp(geo[b] / n), "%.1f"));
    printRow(geo_row, 18);

    auto geomeanOf = [&](const std::string &name) -> const double * {
        for (size_t b = 0; b < names.size(); ++b)
            if (names[b] == name)
                return &geo[b];
        return nullptr;
    };
    const double *enmc_g = geomeanOf("enmc");
    for (const char *rival : {"nda", "chameleon", "tensordimm"}) {
        const double *g = geomeanOf(rival);
        if (enmc_g && g)
            std::printf("ENMC vs %-11s %.1fx\n", rival,
                        std::exp((*enmc_g - *g) / n));
    }
    std::printf(
        "\nPaper shape (Fig. 13): AS alone ~7.3x over CPU; ENMC largest\n"
        "overall (paper: 56.5x geomean; 3.5x / 5.6x / 2.7x over NDA /\n"
        "Chameleon / TensorDIMM); the XMLCNN-670K column shows the biggest\n"
        "ENMC win; Chameleon is the weakest baseline at batch 1 (systolic\n"
        "underutilization) and catches up by batch 4.\n");
    obs::writeMetrics(metrics);
    return 0;
}
