/**
 * @file
 * Reproduces paper Fig. 13: classification performance of ENMC against
 * the CPU baseline (with and without approximate screening) and the three
 * NMP baselines (NDA, Chameleon, TensorDIMM) — all NMP schemes equipped
 * with approximate screening, batch sizes 1/2/4, normalized to the
 * full-classification CPU baseline.
 */

#include <cmath>

#include "bench_common.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    printHeader("Figure 13: speedup over full-classification CPU baseline");
    printRow({"workload", "batch", "CPU+AS", "NDA", "Chameleon",
              "TensorDIMM", "ENMC"});

    double geo_as = 0.0, geo_enmc = 0.0, geo_nda = 0.0, geo_cham = 0.0,
           geo_td = 0.0;
    int n = 0;

    for (const auto &w : workloads::table2Workloads()) {
        for (uint64_t batch : {1ull, 2ull, 4ull}) {
            const runtime::JobSpec spec = jobSpecFor(w, batch);
            // ENMC's on-DIMM threshold FILTER supports the tightened
            // candidate budget (the paper's "50x" note for XMLCNN); the
            // baselines select candidates after reading psums back, at
            // the conservative Fig. 11 budget.
            const runtime::JobSpec enmc_spec = jobSpecFor(w, batch, true);
            const double cpu_full = cpuFullSeconds(spec);
            const double cpu_as = cpuScreenSeconds(spec);
            const double nda =
                nmpSeconds(nmp::EngineConfig::nda(), spec);
            const double cham =
                nmpSeconds(nmp::EngineConfig::chameleon(), spec);
            const double td =
                nmpSeconds(nmp::EngineConfig::tensorDimm(), spec);
            const double enmc_t = enmcSeconds(enmc_spec);

            printRow({w.abbr, std::to_string(batch),
                      fmt(cpu_full / cpu_as, "%.1f"),
                      fmt(cpu_full / nda, "%.1f"),
                      fmt(cpu_full / cham, "%.1f"),
                      fmt(cpu_full / td, "%.1f"),
                      fmt(cpu_full / enmc_t, "%.1f")});

            geo_as += std::log(cpu_full / cpu_as);
            geo_nda += std::log(cpu_full / nda);
            geo_cham += std::log(cpu_full / cham);
            geo_td += std::log(cpu_full / td);
            geo_enmc += std::log(cpu_full / enmc_t);
            ++n;
        }
    }

    std::printf("\ngeomean speedups over CPU-full:\n");
    printRow({"", "", fmt(std::exp(geo_as / n), "%.1f"),
              fmt(std::exp(geo_nda / n), "%.1f"),
              fmt(std::exp(geo_cham / n), "%.1f"),
              fmt(std::exp(geo_td / n), "%.1f"),
              fmt(std::exp(geo_enmc / n), "%.1f")});
    std::printf(
        "ENMC vs NDA:        %.1fx\n"
        "ENMC vs Chameleon:  %.1fx\n"
        "ENMC vs TensorDIMM: %.1fx\n",
        std::exp((geo_enmc - geo_nda) / n),
        std::exp((geo_enmc - geo_cham) / n),
        std::exp((geo_enmc - geo_td) / n));
    std::printf(
        "\nPaper shape (Fig. 13): AS alone ~7.3x over CPU; ENMC largest\n"
        "overall (paper: 56.5x geomean; 3.5x / 5.6x / 2.7x over NDA /\n"
        "Chameleon / TensorDIMM); the XMLCNN-670K column shows the biggest\n"
        "ENMC win; Chameleon is the weakest baseline at batch 1 (systolic\n"
        "underutilization) and catches up by batch 4.\n");
    return 0;
}
