/**
 * @file
 * Co-location ablation: the ENMC DIMM serving regular host memory
 * requests while classification runs.
 *
 * The paper's instruction format is designed "so that it is compatible
 * with the commodity DDR interface. Thus, our ENMC DIMM can also support
 * regular memory requests." This experiment quantifies the interference
 * both ways: classification slowdown as host traffic intensity rises,
 * and the host's read latency while the Screener/Executor stream.
 */

#include <cmath>

#include "bench_common.h"
#include "runtime/compiler.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

struct ColocationResult
{
    Cycles classification_cycles = 0;
    uint64_t host_reads = 0;
    double host_latency_mean = 0.0;
    double host_latency_max = 0.0;
};

/** Run one rank slice while injecting host reads at `intensity`
 *  requests per memory cycle (Bernoulli arrivals). */
ColocationResult
runColocated(double intensity, uint64_t seed)
{
    arch::RankTask task;
    task.categories = 16384;
    task.hidden = 512;
    task.reduced = 128;
    task.batch = 1;
    task.expected_candidates = 64;
    task.class_weight_base = 1ull << 24;
    task.feature_base = 1ull << 26;
    task.output_base = 1ull << 27;

    arch::EnmcConfig cfg;
    cfg.hw_tile_sequencer = true;
    arch::EnmcRank rank(cfg,
                        dram::Organization::paperTable3().singleRankView(),
                        dram::Timing::ddr4_2400());
    const runtime::CompiledJob job =
        runtime::compileClassification(task, cfg);
    rank.start(job.program, task);

    ColocationResult res;
    double lat_sum = 0.0;
    Rng rng(seed);
    Cycles now = 0;
    // The host's working set lives in a disjoint region of the rank.
    const Addr host_base = 1ull << 30;

    while (!rank.done()) {
        ++now;
        if (intensity > 0.0 && rng.uniform() < intensity) {
            dram::Request req;
            req.addr =
                host_base + (rng.uniformInt(0, (1 << 16) - 1) << 6);
            req.type = dram::ReqType::Read;
            const Cycles issued = now;
            req.on_complete = [&res, &lat_sum,
                               issued](const dram::Request &r) {
                ++res.host_reads;
                const double lat =
                    static_cast<double>(r.complete - issued);
                lat_sum += lat;
                res.host_latency_max = std::max(res.host_latency_max, lat);
            };
            rank.injectHostRequest(std::move(req));
        }
        // One internal instruction delivery per cycle (private bus here).
        rank.tryDeliverInstruction();
        rank.tick();
    }
    res.classification_cycles = rank.takeResult().cycles;
    if (res.host_reads)
        res.host_latency_mean = lat_sum / res.host_reads;
    return res;
}

} // namespace

int
main()
{
    printHeader("Co-location: regular host requests vs classification");
    printRow({"host-req/cyc", "class-cycles", "slowdown", "host-reads",
              "lat-mean", "lat-max"},
             14);

    const ColocationResult base = runColocated(0.0, 1);
    for (double intensity : {0.0, 0.01, 0.02, 0.05, 0.1}) {
        const ColocationResult r = runColocated(intensity, 1);
        printRow({fmt(intensity, "%.2f"),
                  fmt(double(r.classification_cycles), "%.0f"),
                  fmt(double(r.classification_cycles) /
                          base.classification_cycles,
                      "%.2f"),
                  std::to_string(r.host_reads),
                  r.host_reads ? fmt(r.host_latency_mean, "%.0f") : "-",
                  r.host_reads ? fmt(r.host_latency_max, "%.0f") : "-"},
                 14);
    }

    std::printf(
        "\nFinding: light host traffic (1-2%% of cycles) costs ~15-25%%\n"
        "classification time while host reads see ~110-cycle latency —\n"
        "co-location works as the paper claims. Random host traffic near\n"
        "the rank's random-access capacity (~0.1 req/cycle) fills the\n"
        "request queue and starves classification: a deployment pairing\n"
        "ENMC ranks with hot host pages needs QoS (queue partitioning or\n"
        "host-side throttling) — a concrete design note the paper's\n"
        "compatibility claim leaves implicit.\n");
    return 0;
}
