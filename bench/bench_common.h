/**
 * @file
 * Shared helpers for the figure/table reproduction benches: table
 * formatting and the standard workload -> engine plumbing used by the
 * architecture-level experiments.
 */

#ifndef ENMC_BENCH_BENCH_COMMON_H
#define ENMC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "nmp/cpu.h"
#include "nmp/engine.h"
#include "runtime/system.h"
#include "workloads/registry.h"

namespace enmc::bench {

/** Print a row of fixed-width columns. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, const char *spec = "%.3g")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Convert a registry workload to a timing JobSpec.
 * @param nmp_budget Use the tightened Fig. 13/15 candidate budget (the
 *                   NMP/ENMC operating point) instead of the Fig. 11 one.
 */
inline runtime::JobSpec
jobSpecFor(const workloads::Workload &w, uint64_t batch,
           bool nmp_budget = false)
{
    runtime::JobSpec spec;
    spec.categories = w.categories;
    spec.hidden = w.hidden;
    spec.reduced = std::max<uint64_t>(1, w.hidden / 4); // scale 0.25
    spec.batch = batch;
    spec.candidates = nmp_budget ? w.nmpCandidates() : w.candidates;
    spec.sigmoid = w.normalization == nn::Normalization::Sigmoid;
    return spec;
}

/** Seconds for one baseline NMP engine on a job (one rank slice). */
inline double
nmpSeconds(const nmp::EngineConfig &cfg, const runtime::JobSpec &spec,
           arch::RankResult *result_out = nullptr)
{
    runtime::EnmcSystem sys{runtime::SystemConfig{}};
    arch::RankTask task = sys.makeRankTask(spec);
    // Scale very large slices the same way the ENMC path does: simulate a
    // truncated slice and extrapolate linearly (tile-homogeneous).
    const uint64_t max_rows = 64 * 1024;
    double scale = 1.0;
    if (task.categories > max_rows) {
        scale = static_cast<double>(task.categories) / max_rows;
        task.expected_candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(task.expected_candidates / scale));
        task.categories = max_rows;
    }
    nmp::NmpEngine engine(cfg,
                          dram::Organization::paperTable3().singleRankView(),
                          dram::Timing::ddr4_2400());
    arch::RankResult r = engine.run(task);
    if (result_out) {
        *result_out = r;
        result_out->cycles = static_cast<Cycles>(r.cycles * scale);
        result_out->screen_bytes =
            static_cast<uint64_t>(r.screen_bytes * scale);
        result_out->exec_bytes = static_cast<uint64_t>(r.exec_bytes * scale);
        result_out->dram_reads =
            static_cast<uint64_t>(r.dram_reads * scale);
        result_out->dram_writes =
            static_cast<uint64_t>(r.dram_writes * scale);
        result_out->dram_acts = static_cast<uint64_t>(r.dram_acts * scale);
        result_out->dram_refs = static_cast<uint64_t>(r.dram_refs * scale);
    }
    return cyclesToSeconds(static_cast<Cycles>(r.cycles * scale),
                           dram::Timing::ddr4_2400().freq_hz);
}

/** Seconds for the ENMC system on a job. */
inline double
enmcSeconds(const runtime::JobSpec &spec,
            runtime::TimingResult *result_out = nullptr)
{
    runtime::EnmcSystem sys{runtime::SystemConfig{}};
    const runtime::TimingResult r = sys.runTiming(spec);
    if (result_out)
        *result_out = r;
    return r.seconds;
}

/** CPU full-classification seconds for a job. */
inline double
cpuFullSeconds(const runtime::JobSpec &spec)
{
    nmp::CpuConfig cpu;
    return nmp::cpuFullClassificationTime(cpu, spec.categories, spec.hidden,
                                          spec.batch);
}

/** CPU + approximate-screening seconds for a job. */
inline double
cpuScreenSeconds(const runtime::JobSpec &spec)
{
    nmp::CpuConfig cpu;
    return nmp::cpuScreeningTime(cpu, spec.categories, spec.hidden,
                                 spec.reduced, spec.candidates, spec.batch,
                                 spec.quant);
}

} // namespace enmc::bench

#endif // ENMC_BENCH_BENCH_COMMON_H
