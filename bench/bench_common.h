/**
 * @file
 * Shared helpers for the figure/table reproduction benches: table
 * formatting and the standard workload -> engine plumbing used by the
 * architecture-level experiments.
 */

#ifndef ENMC_BENCH_BENCH_COMMON_H
#define ENMC_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "nmp/cpu.h"
#include "nmp/engine.h"
#include "runtime/backend.h"
#include "runtime/system.h"
#include "workloads/registry.h"

namespace enmc::bench {

/** Print a row of fixed-width columns. */
inline void
printRow(const std::vector<std::string> &cells, int width = 14)
{
    for (const auto &c : cells)
        std::printf("%-*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, const char *spec = "%.3g")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

inline void
printHeader(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Convert a registry workload to a timing JobSpec.
 * @param nmp_budget Use the tightened Fig. 13/15 candidate budget (the
 *                   NMP/ENMC operating point) instead of the Fig. 11 one.
 */
inline runtime::JobSpec
jobSpecFor(const workloads::Workload &w, uint64_t batch,
           bool nmp_budget = false)
{
    runtime::JobSpec spec;
    spec.categories = w.categories;
    spec.hidden = w.hidden;
    spec.reduced = std::max<uint64_t>(1, w.hidden / 4); // scale 0.25
    spec.batch = batch;
    spec.candidates = nmp_budget ? w.nmpCandidates() : w.candidates;
    spec.sigmoid = w.normalization == nn::Normalization::Sigmoid;
    return spec;
}

/**
 * Parse a `--backend=<name>` flag (validated against the registry).
 * @return the selected name, or "" when the flag is absent (= run the
 *         bench's default backend set).
 */
inline std::string
parseBackendFlag(int argc, char **argv)
{
    const std::string prefix = "--backend=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) != 0)
            continue;
        const std::string name = arg.substr(prefix.size());
        if (!runtime::BackendRegistry::instance().contains(name)) {
            std::string known;
            for (const auto &n : runtime::backendNames())
                known += (known.empty() ? "" : ", ") + n;
            ENMC_FATAL("--backend=", name, " is not registered (choose ",
                       "one of: ", known, ")");
        }
        return name;
    }
    return "";
}

/** Seconds for a registry backend on a job (whole-system timing). */
inline double
backendSeconds(const runtime::Backend &backend,
               const runtime::JobSpec &spec,
               runtime::TimingResult *result_out = nullptr)
{
    const runtime::TimingResult r = backend.runJob(spec);
    if (result_out)
        *result_out = r;
    return r.seconds;
}

/** Seconds for one baseline NMP engine on a job (one rank slice). */
inline double
nmpSeconds(const nmp::EngineConfig &cfg, const runtime::JobSpec &spec,
           arch::RankResult *result_out = nullptr)
{
    const runtime::NmpBackend backend(nmp::engineKindName(cfg.kind), cfg,
                                      runtime::SystemConfig{});
    runtime::TimingResult r;
    const double seconds = backendSeconds(backend, spec, &r);
    if (result_out)
        *result_out = r.rank;
    return seconds;
}

/** Seconds for the ENMC system on a job. */
inline double
enmcSeconds(const runtime::JobSpec &spec,
            runtime::TimingResult *result_out = nullptr)
{
    const runtime::EnmcBackend backend{runtime::SystemConfig{}};
    return backendSeconds(backend, spec, result_out);
}

/** CPU full-classification seconds for a job. */
inline double
cpuFullSeconds(const runtime::JobSpec &spec)
{
    nmp::CpuConfig cpu;
    return nmp::cpuFullClassificationTime(cpu, spec.categories, spec.hidden,
                                          spec.batch);
}

/** CPU + approximate-screening seconds for a job. */
inline double
cpuScreenSeconds(const runtime::JobSpec &spec)
{
    nmp::CpuConfig cpu;
    return nmp::cpuScreeningTime(cpu, spec.categories, spec.hidden,
                                 spec.reduced, spec.candidates, spec.batch,
                                 spec.quant);
}

} // namespace enmc::bench

#endif // ENMC_BENCH_BENCH_COMMON_H
