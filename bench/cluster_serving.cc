/**
 * @file
 * Cluster-fabric serving drill: Poisson load over an S100M-scale label
 * space sharded across N simulated ENMC nodes, with a scripted node kill
 * fired mid-run.
 *
 * Two phases, both deterministic (pure functions of the flags):
 *
 *  - **Phase 1 — timing.** The S100M (default) workload is sharded
 *    across `--nodes` with `--replication`-way chained declustering and
 *    driven by open-loop Poisson arrivals (fixed seed). Node
 *    `--kill-node` is killed after `--kill-after` routed batches; the
 *    run must finish with zero dispatches to the dead node and a p99
 *    within the SLO (`--slo-x` times the steady-state batch service
 *    time).
 *  - **Phase 2 — correctness.** The same cluster shape serves a
 *    synthetic-scale classifier with per-request logits and the same
 *    scripted kill; every admitted response is checked bit-for-bit
 *    against the unsharded single-query reference forward. The run must
 *    finish with zero wrong answers.
 *
 * `--check` exits non-zero unless both phases hold (the CI smoke gate).
 *
 * Usage:
 *   cluster_serving [--nodes=4] [--replication=2] [--workload=S100M]
 *                   [--requests=256] [--poisson-qps=R (0 = 50% capacity)]
 *                   [--max-batch=16] [--kill-node=1] [--kill-after=8]
 *                   [--slo-x=5] [--check] [--metrics-json=FILE]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/router.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/percentiles.h"
#include "obs/registry.h"
#include "runtime/api.h"
#include "serve/loop.h"
#include "workloads/registry.h"
#include "workloads/synthetic.h"

using namespace enmc;

namespace {

std::string
flagValue(int argc, char **argv, const std::string &name,
          const std::string &fallback)
{
    const std::string prefix = "--" + name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return fallback;
}

double
flagDouble(int argc, char **argv, const std::string &name, double fallback)
{
    const std::string v = flagValue(argc, argv, name, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

bool
flagPresent(int argc, char **argv, const std::string &name)
{
    const std::string flag = "--" + name;
    for (int i = 1; i < argc; ++i)
        if (flag == argv[i])
            return true;
    return false;
}

serve::ArrivalTrace
poissonTrace(size_t requests, double qps)
{
    serve::ArrivalTrace trace;
    Rng rng(42);
    double t = 0.0;
    for (size_t i = 0; i < requests; ++i) {
        serve::Request r;
        r.id = i;
        r.arrival_us = t;
        trace.requests.push_back(r);
        t += -std::log(1.0 - rng.uniform(0.0, 1.0)) * 1e6 / qps;
    }
    return trace;
}

/** Router health/accounting after a killed run; false = inconsistent. */
bool
auditRouter(cluster::ClusterRouter &router, bool expect_kill)
{
    bool ok = true;
    const uint64_t dead =
        router.stats().counter("deadDispatches").value();
    if (dead != 0) {
        std::printf("  AUDIT FAIL: %llu dispatches to dead nodes\n",
                    static_cast<unsigned long long>(dead));
        ok = false;
    }
    uint64_t node_total = 0;
    for (size_t n = 0; n < router.nodeCount(); ++n)
        node_total +=
            router.node(n).stats().counter("dispatchedBatches").value();
    const uint64_t fan_out =
        router.stats().counter("shardDispatches").value();
    if (node_total != fan_out) {
        std::printf("  AUDIT FAIL: node dispatch sum %llu != router "
                    "fan-out %llu\n",
                    static_cast<unsigned long long>(node_total),
                    static_cast<unsigned long long>(fan_out));
        ok = false;
    }
    if (expect_kill &&
        router.stats().counter("nodeKills").value() == 0) {
        std::printf("  AUDIT FAIL: scripted kill never fired\n");
        ok = false;
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "cluster_serving");

    const uint64_t nodes =
        static_cast<uint64_t>(flagDouble(argc, argv, "nodes", 4));
    const uint64_t replication =
        static_cast<uint64_t>(flagDouble(argc, argv, "replication", 2));
    const std::string wl_name =
        flagValue(argc, argv, "workload", "S100M");
    const size_t requests =
        static_cast<size_t>(flagDouble(argc, argv, "requests", 256));
    const size_t max_batch =
        static_cast<size_t>(flagDouble(argc, argv, "max-batch", 16));
    const int64_t kill_node =
        static_cast<int64_t>(flagDouble(argc, argv, "kill-node", 1));
    const uint64_t kill_after =
        static_cast<uint64_t>(flagDouble(argc, argv, "kill-after", 8));
    const double slo_x = flagDouble(argc, argv, "slo-x", 5.0);
    const bool check = flagPresent(argc, argv, "check");

    // ----- Phase 1: Poisson load at S100M scale, node killed mid-run ----
    const workloads::Workload wl = workloads::findWorkload(wl_name);
    const runtime::JobSpec job = bench::jobSpecFor(wl, 1, true);

    serve::ServeConfig cfg = serve::serveConfigFromEnv();
    cfg.backend = "cluster";
    cfg.cluster.nodes = nodes;
    cfg.cluster.replication = replication;
    cfg.cluster.kill.node = kill_node;
    cfg.cluster.kill.after_batches = kill_after;
    cfg.max_batch = max_batch;
    cfg.queue_capacity = std::max(cfg.queue_capacity, max_batch * 8);
    cfg.compute_logits = false; // timing-only load generation
    cfg.warmup_requests = std::min<size_t>(cfg.warmup_requests,
                                           requests / 8);

    serve::ServeLoop loop(cfg, job);
    // Steady-state full-batch service time anchors both the offered load
    // (default 50% of capacity) and the SLO.
    const double svc_us = loop.batchServiceUs(max_batch, job.candidates);
    const double capacity_qps = 1e6 * max_batch / svc_us;
    double qps = flagDouble(argc, argv, "poisson-qps", 0.0);
    if (qps <= 0.0)
        qps = 0.5 * capacity_qps;
    const double slo_us = slo_x * svc_us;

    std::printf("cluster %s (l=%llu): %llu nodes, %llu-way replication, "
                "kill node %lld after %llu batches\n",
                wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(nodes),
                static_cast<unsigned long long>(replication),
                static_cast<long long>(kill_node),
                static_cast<unsigned long long>(kill_after));
    std::printf("  batch-%zu service %.1f us, capacity %.0f qps, "
                "offering %.0f qps, SLO %.0f us\n",
                max_batch, svc_us, capacity_qps, qps, slo_us);

    const serve::ServeReport report =
        loop.replay(poissonTrace(requests, qps));
    const obs::Percentiles lat = report.measuredLatency();

    cluster::ClusterRouter *router = loop.clusterRouter();
    const uint64_t live = router->liveNodeCount();
    std::printf("\n  %8s %9s %9s %9s %9s %7s %9s\n", "qps", "p50us",
                "p95us", "p99us", "maxus", "live", "served");
    std::printf("  %8.0f %9.1f %9.1f %9.1f %9.1f %4llu/%llu %5zu/%zu\n",
                report.queriesPerSecond(), lat.at(0.50), lat.at(0.95),
                lat.at(0.99), lat.max(),
                static_cast<unsigned long long>(live),
                static_cast<unsigned long long>(nodes),
                report.admittedCount(), report.responses.size());
    std::printf("  failover: %llu reroutes, %llu node kills\n",
                static_cast<unsigned long long>(
                    router->stats().counter("reroutes").value()),
                static_cast<unsigned long long>(
                    router->stats().counter("nodeKills").value()));

    const bool timing_audit_ok = auditRouter(*router, kill_node >= 0);
    const bool p99_ok = lat.at(0.99) <= slo_us;

    // ----- Phase 2: per-request answers checked against reference ------
    std::printf("\ncorrectness drill (synthetic scale, same cluster "
                "shape, same kill):\n");
    workloads::SyntheticConfig syn;
    syn.categories = 1024;
    syn.hidden = 64;
    workloads::SyntheticModel model(syn);
    Rng data = model.makeRng(1);
    const auto train = model.sampleHiddenBatch(data, 160);
    const auto val = model.sampleHiddenBatch(data, 48);
    const auto queries = model.sampleHiddenBatch(data, 32);

    runtime::ClassifierOptions opt;
    opt.candidates = 48;
    runtime::EnmcClassifier clf(model.classifier(), opt,
                                runtime::SystemConfig{});
    clf.calibrate(train, val);
    runtime::EnmcClassifier reference(model.classifier(), opt,
                                      runtime::SystemConfig{});
    reference.calibrate(train, val);

    serve::ServeConfig fcfg = cfg;
    fcfg.compute_logits = true;
    fcfg.topk = 5;
    fcfg.max_batch = 8;
    fcfg.max_delay_us = 50.0;
    fcfg.warmup_requests = 0;
    fcfg.cluster.kill.after_batches = 2;

    serve::ArrivalTrace ftrace;
    for (size_t i = 0; i < queries.size(); ++i) {
        serve::Request r;
        r.id = i;
        r.hidden = queries[i];
        r.arrival_us = static_cast<double>(i / 8) * 120.0;
        ftrace.requests.push_back(r);
    }

    serve::ServeLoop floop(fcfg, job);
    floop.attachClassifier(clf);
    const serve::ServeReport freport = floop.replay(ftrace);

    size_t wrong = 0, answered = 0;
    for (const serve::Response &resp : freport.responses) {
        if (resp.admission != serve::Admission::Admitted)
            continue;
        ++answered;
        const auto ref = reference.forward({queries[resp.id]}, fcfg.topk);
        const bool bits_ok =
            resp.probabilities.size() == ref[0].probabilities.size() &&
            std::memcmp(resp.probabilities.data(),
                        ref[0].probabilities.data(),
                        ref[0].probabilities.size() * sizeof(float)) == 0;
        if (!bits_ok || resp.topk != ref[0].topk)
            ++wrong;
    }
    cluster::ClusterRouter *frouter = floop.clusterRouter();
    const bool func_audit_ok = auditRouter(*frouter, kill_node >= 0);
    std::printf("  %zu/%zu answered, %zu wrong, %llu/%llu nodes live "
                "after kill\n",
                answered, queries.size(), wrong,
                static_cast<unsigned long long>(frouter->liveNodeCount()),
                static_cast<unsigned long long>(nodes));

    // ----- metrics + check gate -----------------------------------------
    StatGroup bench_stats("bench.cluster_serving");
    obs::StatRegistration bench_reg(bench_stats);
    bench_stats.addScalar("offeredQps", "Poisson arrival rate").sample(qps);
    bench_stats.addScalar("achievedQps", "replay throughput")
        .sample(report.queriesPerSecond());
    bench_stats.addScalar("p99Us", "p99 latency under Poisson load")
        .sample(lat.at(0.99));
    bench_stats.addScalar("sloUs", "latency SLO").sample(slo_us);
    bench_stats.addScalar("wrongAnswers",
                          "responses differing from the reference")
        .sample(static_cast<double>(wrong));
    obs::writeMetrics(metrics);

    if (check) {
        const bool answers_ok = wrong == 0 && answered == queries.size();
        std::printf("\ncheck: p99 %.1f us <= SLO %.0f us: %s; zero wrong "
                    "answers: %s; routing audit: %s\n",
                    lat.at(0.99), slo_us, p99_ok ? "yes" : "NO",
                    answers_ok ? "yes" : "NO",
                    (timing_audit_ok && func_audit_ok) ? "yes" : "NO");
        if (!p99_ok || !answers_ok || !timing_audit_ok ||
            !func_audit_ok) {
            std::printf("check: FAIL\n");
            return 1;
        }
        std::printf("check: PASS\n");
    }
    return 0;
}
