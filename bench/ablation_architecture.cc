/**
 * @file
 * Architecture ablations for the design choices DESIGN.md calls out:
 *  1. INT4 vs FP32 screening datapath on ENMC (heterogeneity benefit);
 *  2. dual-module overlap vs serialized phases;
 *  3. weight-tile prefetch depth (DDR command pipelining);
 *  4. partial-sum spill on the TensorDIMM baseline (buffer sizing);
 *  5. candidate-budget sweep (latency vs accuracy budget).
 */

#include "bench_common.h"
#include "runtime/compiler.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

arch::RankTask
baseTask(uint64_t cands = 300)
{
    // One rank's slice of XMLCNN-670K.
    arch::RankTask t;
    t.categories = 10471;
    t.hidden = 512;
    t.reduced = 128;
    t.batch = 1;
    t.expected_candidates = cands;
    t.class_weight_base = 1ull << 24;
    t.bias_base = 1ull << 25;
    t.feature_base = 1ull << 26;
    t.output_base = 1ull << 27;
    t.sigmoid = true;
    return t;
}

Cycles
runEnmc(const arch::EnmcConfig &cfg, const arch::RankTask &task)
{
    arch::EnmcRank rank(cfg,
                        dram::Organization::paperTable3().singleRankView(),
                        dram::Timing::ddr4_2400());
    const auto job = runtime::compileClassification(task, cfg);
    return rank.run(job.program, task).cycles;
}

} // namespace

int
main()
{
    printHeader("Ablation 1: screening datapath precision (ENMC rank)");
    printRow({"precision", "cycles", "norm"});
    {
        arch::EnmcConfig cfg;
        arch::RankTask int4 = baseTask();
        arch::RankTask int8 = baseTask();
        int8.quant = tensor::QuantBits::Int8;
        arch::RankTask fp32 = baseTask();
        fp32.quant = tensor::QuantBits::Fp32;
        const Cycles c4 = runEnmc(cfg, int4);
        const Cycles c8 = runEnmc(cfg, int8);
        const Cycles c32 = runEnmc(cfg, fp32);
        printRow({"INT4", fmt(double(c4), "%.0f"), "1.00"});
        printRow({"INT8", fmt(double(c8), "%.0f"),
                  fmt(double(c8) / c4, "%.2f")});
        printRow({"FP32", fmt(double(c32), "%.0f"),
                  fmt(double(c32) / c4, "%.2f")});
        std::printf("-> the INT4 Screener datapath is the dominant term in\n"
                    "   ENMC's advantage over homogeneous-FP32 baselines.\n");
    }

    printHeader("Ablation 2: dual-module overlap");
    printRow({"config", "cycles", "norm"});
    {
        // Overlap pays when one module is compute-bound while the other
        // streams: throttle the FP32 array so candidate compute matches
        // the screening stream time, then compare against running the
        // two phases back-to-back (what a single shared unit would do).
        arch::EnmcConfig cfg;
        cfg.fp32_macs = 1;
        const arch::RankTask both = baseTask(28);
        arch::RankTask screen_only = baseTask(1);
        arch::RankTask exec_heavy = baseTask(28);
        exec_heavy.categories = 64; // negligible screening
        const Cycles c_both = runEnmc(cfg, both);
        const Cycles c_screen = runEnmc(cfg, screen_only);
        const Cycles c_exec = runEnmc(cfg, exec_heavy);
        printRow({"overlapped", fmt(double(c_both), "%.0f"), "1.00"});
        printRow({"serialized*", fmt(double(c_screen + c_exec), "%.0f"),
                  fmt(double(c_screen + c_exec) / c_both, "%.2f")});
        std::printf("(*) screening-only + executor-only runs back-to-back.\n"
                    "-> parallel Screener/Executor hides one module's time\n"
                    "   under the other; with balanced phases the gain\n"
                    "   approaches 2x. When both phases are bus-limited the\n"
                    "   shared rank bus caps the gain (streams serialize on\n"
                    "   the data bus either way).\n");
    }

    printHeader("Ablation 3: weight-tile prefetch depth");
    printRow({"depth", "cycles", "norm"});
    {
        Cycles base = 0;
        for (size_t depth : {1, 2, 4, 8, 16}) {
            arch::EnmcConfig cfg;
            cfg.prefetch_tiles = depth;
            const Cycles c = runEnmc(cfg, baseTask());
            if (depth == 1)
                base = c;
            printRow({std::to_string(depth), fmt(double(c), "%.0f"),
                      fmt(double(c) / base, "%.2f")});
        }
        std::printf("-> shallow prefetch leaves the rank latency-bound;\n"
                    "   ~8 tiles suffice to hide the CAS latency.\n");
    }

    printHeader("Ablation 4: TensorDIMM partial-sum spill (batch 4)");
    printRow({"buffers", "cycles", "spill-bytes", "norm"});
    {
        const dram::Organization org =
            dram::Organization::paperTable3().singleRankView();
        nmp::EngineConfig spill = nmp::EngineConfig::tensorDimm();
        nmp::EngineConfig big = spill;
        big.buffer_bytes = 1 << 20; // large enough: no spill
        arch::RankTask t = baseTask();
        t.batch = 4; // psum working set = l x batch x 4 B
        nmp::NmpEngine e_spill(spill, org, dram::Timing::ddr4_2400());
        nmp::NmpEngine e_big(big, org, dram::Timing::ddr4_2400());
        const auto r_spill = e_spill.run(t);
        const auto r_big = e_big.run(t);
        printRow({"512B*3 (spills)", fmt(double(r_spill.cycles), "%.0f"),
                  fmt(double(r_spill.screen_bytes - r_big.screen_bytes),
                      "%.0f"),
                  fmt(double(r_spill.cycles) / r_big.cycles, "%.2f")});
        printRow({"1MB (no spill)", fmt(double(r_big.cycles), "%.0f"), "0",
                  "1.00"});
        std::printf(
            "-> the psum round trip the paper attributes to the baselines'\n"
            "   small buffers. For *screening* the spill is a modest share\n"
            "   of traffic (psums are l*batch*4B vs l*k*4B weights); the\n"
            "   dominant baseline deficits remain FP32 screening traffic\n"
            "   (ablation 1) and the lack of an on-the-fly FILTER.\n");
    }

    printHeader("Ablation 5: candidate budget sweep (ENMC rank)");
    printRow({"candidates", "cycles", "us"});
    {
        arch::EnmcConfig cfg;
        for (uint64_t m : {16ull, 64ull, 277ull, 1000ull, 4000ull}) {
            const Cycles c = runEnmc(cfg, baseTask(m));
            printRow({std::to_string(m), fmt(double(c), "%.0f"),
                      fmt(cyclesToSeconds(c, 1200e6) * 1e6, "%.1f")});
        }
        std::printf("-> latency is flat until candidate traffic overtakes\n"
                    "   screening traffic, then grows linearly.\n");
    }
    return 0;
}
