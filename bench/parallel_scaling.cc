/**
 * @file
 * Micro-benchmark for the thread-pooled functional simulator: runs the
 * same 4-rank functional classification serially and with 2/4/8 worker
 * threads, verifies the outputs are bit-identical, and reports the
 * wall-clock speedup.
 *
 * Rank-slice simulations are independent (each worker owns its EnmcRank
 * instance), so on a machine with >= 4 cores the 4-worker run should
 * approach 4x; on fewer cores the speedup is bounded by the core count
 * (the determinism guarantee holds regardless).
 */

#include <chrono>
#include <thread>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/percentiles.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
bitIdentical(const runtime::EnmcSystem::FunctionalResult &a,
             const runtime::EnmcSystem::FunctionalResult &b)
{
    if (a.rank_cycles != b.rank_cycles || a.logits.size() != b.logits.size())
        return false;
    for (size_t item = 0; item < a.logits.size(); ++item) {
        if (a.logits[item] != b.logits[item] ||
            a.candidates[item] != b.candidates[item])
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "parallel_scaling");
    printHeader("Functional-simulation scaling (4 rank slices)");
    std::printf("hardware threads available: %u\n",
                std::thread::hardware_concurrency());

    // A functional model large enough that slice simulation dominates.
    workloads::SyntheticConfig mc;
    mc.categories = 8192;
    mc.hidden = 128;
    workloads::SyntheticModel model(mc);

    screening::ScreenerConfig cfg;
    cfg.categories = mc.categories;
    cfg.hidden = mc.hidden;
    cfg.selection = screening::SelectionMode::Threshold;
    Rng rng(3);
    screening::Screener screener(cfg, rng);
    Rng data = model.makeRng(1);
    auto train = model.sampleHiddenBatch(data, 192);
    screening::Trainer trainer(model.classifier(), screener,
                               screening::TrainerConfig{});
    trainer.train(train, {});
    screener.freezeQuantized();
    const float cut = screening::tuneThreshold(screener, train, 128);
    screener.setSelection(screening::SelectionMode::Threshold, 128, cut);
    const auto h_batch = model.sampleHiddenBatch(data, 4);

    auto runWith = [&](uint64_t threads,
                       runtime::EnmcSystem::FunctionalResult &out) {
        runtime::SystemConfig sys_cfg;
        sys_cfg.sim_threads = threads;
        runtime::EnmcSystem sys(sys_cfg);
        out = sys.runFunctional(model.classifier(), screener, h_batch, 4);
    };

    // Wall-clock timings are noisy; measure each configuration a few
    // times and report the median (nearest-rank p50).
    const int repeats = 3;
    auto medianSeconds = [&](uint64_t threads,
                             runtime::EnmcSystem::FunctionalResult &out) {
        std::vector<double> samples;
        for (int r = 0; r < repeats; ++r)
            samples.push_back(wallSeconds([&] { runWith(threads, out); }));
        return obs::Percentiles(std::move(samples)).at(0.50);
    };

    runtime::EnmcSystem::FunctionalResult serial;
    // Warm-up (page in the model), then measure.
    runWith(1, serial);
    const double t_serial = medianSeconds(1, serial);
    std::printf("\n%-10s %12s %10s %10s\n", "workers", "median-s",
                "speedup", "bit-match");
    std::printf("%-10s %12.3f %10s %10s\n", "serial", t_serial, "1.00",
                "-");

    for (uint64_t threads : {2ull, 4ull, 8ull}) {
        runtime::EnmcSystem::FunctionalResult pooled;
        const double t = medianSeconds(threads, pooled);
        std::printf("%-10llu %12.3f %10.2f %10s\n",
                    static_cast<unsigned long long>(threads), t,
                    t_serial / t,
                    bitIdentical(serial, pooled) ? "yes" : "NO!");
        if (!bitIdentical(serial, pooled)) {
            std::printf("ERROR: pooled run diverged from serial\n");
            return 1;
        }
    }

    std::printf(
        "\nThe 4 rank slices are independent simulations; with >= 4 cores\n"
        "the 4-worker run targets >= 2x (typically ~3.5-4x). Output is\n"
        "asserted bit-identical to the serial path at every worker count\n"
        "(also enforced by tests/runtime/test_backend.cc).\n");
    obs::writeMetrics(metrics);
    return 0;
}
