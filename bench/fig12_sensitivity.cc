/**
 * @file
 * Reproduces paper Fig. 12: sensitivity of Approximate Screening to
 *  (a) the screener parameter-reduction scale (vs the full classifier) —
 *      the paper picks 0.25 as the quality-preserving point;
 *  (b) the quantization level of the screening module — 4-bit fixed point
 *      maintains approximation quality comparable to FP32.
 */

#include "bench_common.h"
#include "screening/metrics.h"
#include "screening/trainer.h"
#include "workloads/synthetic.h"

using namespace enmc;
using namespace enmc::bench;

namespace {

struct Result
{
    double recall;
    double top1;
    double mse;
};

Result
evaluate(const workloads::SyntheticModel &model,
         const std::vector<tensor::Vector> &train,
         const std::vector<tensor::Vector> &eval, double scale,
         tensor::QuantBits quant)
{
    screening::ScreenerConfig cfg;
    cfg.categories = model.classifier().categories();
    cfg.hidden = model.classifier().hidden();
    cfg.reduction_scale = scale;
    cfg.quant = quant;
    cfg.selection = screening::SelectionMode::TopM;
    cfg.top_m = cfg.categories / 32;
    Rng rng(42);
    screening::Screener screener(cfg, rng);
    screening::Trainer trainer(model.classifier(), screener,
                               screening::TrainerConfig{});
    const auto report = trainer.train(train, {});
    screener.freezeQuantized();
    screening::Pipeline pipe(model.classifier(), screener);
    const auto q = screening::evaluateQuality(pipe, eval, 5);
    return {q.candidate_recall, q.top1_agreement, report.final_val_mse};
}

} // namespace

int
main()
{
    const workloads::Workload w =
        workloads::findWorkload("Transformer-W268K");
    workloads::SyntheticModel model(w.functionalConfig());
    Rng rng = model.makeRng(1);
    const auto train = model.sampleHiddenBatch(rng, 256);
    const auto eval = model.sampleHiddenBatch(rng, 64);

    printHeader("Figure 12(a): parameter reduction scale sweep (INT4)");
    printRow({"scale", "screener-MB*", "recall%", "top1%", "train-mse"});
    for (double scale : {0.0625, 0.125, 0.25, 0.5}) {
        const Result r = evaluate(model, train, eval, scale,
                                  tensor::QuantBits::Int4);
        // Full-scale screener footprint at this scale (INT4).
        const double mb =
            double(w.categories) * (w.hidden * scale) * 0.5 / 1e6;
        printRow({fmt(scale, "%.4f"), fmt(mb, "%.1f"),
                  fmt(100 * r.recall, "%.1f"), fmt(100 * r.top1, "%.1f"),
                  fmt(r.mse, "%.3f")});
    }
    std::printf("(*) projected full-scale screener weight footprint.\n");

    printHeader("Figure 12(b): quantization level sweep (scale 0.25)");
    printRow({"precision", "bytes/elem", "recall%", "top1%", "train-mse"});
    struct Level
    {
        const char *name;
        tensor::QuantBits bits;
        double bytes;
    };
    for (const Level lv : {Level{"FP32", tensor::QuantBits::Fp32, 4.0},
                           Level{"INT8", tensor::QuantBits::Int8, 1.0},
                           Level{"INT4", tensor::QuantBits::Int4, 0.5},
                           Level{"INT2", tensor::QuantBits::Int2, 0.25}}) {
        const Result r = evaluate(model, train, eval, 0.25, lv.bits);
        printRow({lv.name, fmt(lv.bytes, "%.2f"),
                  fmt(100 * r.recall, "%.1f"), fmt(100 * r.top1, "%.1f"),
                  fmt(r.mse, "%.3f")});
    }

    std::printf(
        "\nPaper shape (Fig. 12): quality saturates by scale 0.25, and INT4\n"
        "matches FP32 approximation quality while INT2 degrades — the\n"
        "basis for the paper's 0.25 / INT4 operating point.\n");
    return 0;
}
