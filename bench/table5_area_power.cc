/**
 * @file
 * Reproduces paper Table 5: area and power breakdown of the ENMC logic
 * (TSMC 28nm @ 400 MHz), with the share analysis quoted in Section 7.2.
 */

#include "bench_common.h"
#include "energy/model.h"

using namespace enmc;
using namespace enmc::bench;

int
main()
{
    printHeader("Table 5: ENMC area & power estimation");
    printRow({"block", "area-mm2", "power-mW", "area%", "power%"}, 18);

    const auto blocks = energy::enmcLogicBlocks();
    const double total_area = energy::enmcLogicArea();
    const double total_power = energy::enmcLogicPower();
    for (const auto &b : blocks) {
        printRow({b.name, fmt(b.area_mm2, "%.3f"), fmt(b.power_mw, "%.1f"),
                  fmt(100 * b.area_mm2 / total_area, "%.1f"),
                  fmt(100 * b.power_mw / total_power, "%.1f")},
                 18);
    }
    printRow({"Total", fmt(total_area, "%.3f"), fmt(total_power, "%.1f"),
              "100.0", "100.0"},
             18);

    // The shares the paper calls out.
    const double compute_area = blocks[0].area_mm2 + blocks[1].area_mm2;
    const double compute_power = blocks[0].power_mw + blocks[1].power_mw;
    const double buffer_area = blocks[2].area_mm2 + blocks[3].area_mm2;
    const double buffer_power = blocks[2].power_mw + blocks[3].power_mw;
    std::printf("\ncompute units: %.1f%% area, %.1f%% power"
                " (paper: 40.8%% area [of core], 25%% power)\n",
                100 * compute_area / total_area,
                100 * compute_power / total_power);
    std::printf("buffers:       %.1f%% area, %.1f%% power"
                " (paper: 23.5%% area, 32.2%% power)\n",
                100 * buffer_area / total_area,
                100 * buffer_power / total_power);
    std::printf("controllers:   ENMC ctrl %.1f%%/%.1f%%, DRAM ctrl"
                " %.1f%%/%.1f%% (paper: 9.0/12.4 and 34.8/29.5)\n",
                100 * blocks[4].area_mm2 / total_area,
                100 * blocks[4].power_mw / total_power,
                100 * blocks[5].area_mm2 / total_area,
                100 * blocks[5].power_mw / total_power);
    return 0;
}
