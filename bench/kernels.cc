/**
 * @file
 * google-benchmark microbenchmarks for the numeric kernels the library is
 * built on: full GEMV, quantized GEMV, sparse projection, top-k selection
 * and the SFU-style Taylor softmax. These are the host-side costs of the
 * algorithm-level experiments (Fig. 11/12).
 */

#include <benchmark/benchmark.h>

#include <string>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/projection.h"
#include "tensor/quantize.h"
#include "tensor/topk.h"

using namespace enmc;
using namespace enmc::tensor;

namespace {

Matrix
randomMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal());
    return m;
}

Vector
randomVector(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

void
BM_GemvFp32(benchmark::State &state)
{
    const size_t l = state.range(0);
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    Vector z(l);
    for (auto _ : state) {
        kernels::gemvInto(w, h, {}, z, 1);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * l * d * 4);
}
BENCHMARK(BM_GemvFp32)->Arg(1024)->Arg(8192)->Arg(65536);

void
BM_GemvInt4(benchmark::State &state)
{
    const size_t l = state.range(0);
    const size_t d = 128;
    const QuantizedMatrix wq = quantize(randomMatrix(l, d, 3),
                                        QuantBits::Int4);
    const QuantizedVector hq = quantize(randomVector(d, 4),
                                        QuantBits::Int4);
    Vector z(l);
    for (auto _ : state) {
        gemvQuantizedRows(wq, hq.values, hq.scale, {}, z, 0, l);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * l * d);
}
BENCHMARK(BM_GemvInt4)->Arg(1024)->Arg(8192)->Arg(65536);

void
BM_SparseProjection(benchmark::State &state)
{
    const size_t d = state.range(0);
    const size_t k = d / 4;
    Rng rng(5);
    const SparseProjection p(k, d, rng);
    const Vector h = randomVector(d, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.apply(h));
    state.SetItemsProcessed(int64_t(state.iterations()) * p.nonZeros());
}
BENCHMARK(BM_SparseProjection)->Arg(512)->Arg(1024)->Arg(1536);

void
BM_TopK(benchmark::State &state)
{
    const size_t l = state.range(0);
    const Vector z = randomVector(l, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(topkIndices(z, 64));
    state.SetItemsProcessed(int64_t(state.iterations()) * l);
}
BENCHMARK(BM_TopK)->Arg(8192)->Arg(65536)->Arg(262144);

void
BM_MergeTopK(benchmark::State &state)
{
    // The cluster gather path: merge per-shard top-64 lists into the
    // global top-64 (shards hold disjoint, offset index ranges).
    const size_t shards = state.range(0);
    constexpr size_t kPerShard = 64;
    std::vector<std::vector<Scored>> lists(shards);
    for (size_t s = 0; s < shards; ++s) {
        const Vector z = randomVector(8192, 9 + s);
        lists[s] = topkScored(z, kPerShard,
                              static_cast<uint32_t>(s * 8192));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(mergeTopK(lists, kPerShard));
    state.SetItemsProcessed(int64_t(state.iterations()) * shards *
                            kPerShard);
}
BENCHMARK(BM_MergeTopK)->Arg(2)->Arg(8)->Arg(64);

void
BM_ThresholdFilter(benchmark::State &state)
{
    const size_t l = state.range(0);
    const Vector z = randomVector(l, 8);
    const float cut = thresholdForCount(z, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(thresholdIndices(z, cut));
    state.SetItemsProcessed(int64_t(state.iterations()) * l);
}
BENCHMARK(BM_ThresholdFilter)->Arg(8192)->Arg(65536)->Arg(262144);

void
BM_SoftmaxExact(benchmark::State &state)
{
    const Vector z = randomVector(state.range(0), 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(softmax(z));
    state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SoftmaxExact)->Arg(8192)->Arg(65536);

void
BM_SoftmaxTaylor(benchmark::State &state)
{
    const Vector z = randomVector(state.range(0), 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(softmaxTaylor(z));
    state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SoftmaxTaylor)->Arg(8192)->Arg(65536);

void
BM_Quantize(benchmark::State &state)
{
    const Matrix w = randomMatrix(state.range(0), 128, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(quantize(w, QuantBits::Int4));
    state.SetItemsProcessed(int64_t(state.iterations()) * w.size());
}
BENCHMARK(BM_Quantize)->Arg(1024)->Arg(16384);

// ---------------------------------------------------------------------
// Per-dispatch-target variants, registered for every target this CPU
// supports so one run records the scalar/sse2/avx2 comparison (the
// speedup numbers archived in BENCH_kernels.json).

void
GemvFp32AtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t l = state.range(0);
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    Vector z(l);
    for (auto _ : state) {
        kernels::gemvInto(w, h, {}, z, 1);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * l * d * 4);
}

void
GemvInt4AtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t l = state.range(0);
    const size_t d = 128;
    const QuantizedMatrix wq = quantize(randomMatrix(l, d, 3),
                                        QuantBits::Int4);
    const QuantizedVector hq = quantize(randomVector(d, 4),
                                        QuantBits::Int4);
    Vector z(l);
    for (auto _ : state) {
        gemvQuantizedRows(wq, hq.values, hq.scale, {}, z, 0, l);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * l * d);
}

void
GemvBatchAtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t nq = state.range(0);
    const size_t l = 65536;
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    std::vector<Vector> hs;
    for (size_t q = 0; q < nq; ++q)
        hs.push_back(randomVector(d, 20 + q));
    for (auto _ : state)
        benchmark::DoNotOptimize(gemvBatch(w, hs));
    // Per-item effective bandwidth: the batch reads W once for nq items.
    state.SetBytesProcessed(int64_t(state.iterations()) * nq * l * d * 4);
}

void
SparseProjectionAtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t d = state.range(0);
    Rng rng(5);
    const SparseProjection p(d / 4, d, rng);
    const Vector h = randomVector(d, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.apply(h));
    state.SetItemsProcessed(int64_t(state.iterations()) * p.nonZeros());
}

void
QuantizeAtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const Matrix w = randomMatrix(state.range(0), 128, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(quantize(w, QuantBits::Int4));
    state.SetItemsProcessed(int64_t(state.iterations()) * w.size());
}

void
BM_GemvFp32Parallel(benchmark::State &state)
{
    const size_t workers = state.range(0);
    const size_t l = 65536;
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    Vector z(l);
    for (auto _ : state) {
        kernels::gemvInto(w, h, {}, z, workers);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * l * d * 4);
}
BENCHMARK(BM_GemvFp32Parallel)->Arg(1)->Arg(2)->Arg(4);

void
registerTargetVariants()
{
    for (kernels::Target t : kernels::availableTargets()) {
        const std::string tn = kernels::targetName(t);
        auto name = [&tn](const char *base) {
            return std::string(base) + "<" + tn + ">";
        };
        benchmark::RegisterBenchmark(name("BM_GemvFp32").c_str(),
                                     GemvFp32AtTarget, t)
            ->Arg(1024)->Arg(8192)->Arg(65536);
        benchmark::RegisterBenchmark(name("BM_GemvInt4").c_str(),
                                     GemvInt4AtTarget, t)
            ->Arg(1024)->Arg(8192)->Arg(65536);
        benchmark::RegisterBenchmark(name("BM_GemvBatch").c_str(),
                                     GemvBatchAtTarget, t)
            ->Arg(1)->Arg(4)->Arg(8);
        benchmark::RegisterBenchmark(name("BM_SparseProjection").c_str(),
                                     SparseProjectionAtTarget, t)
            ->Arg(1024);
        benchmark::RegisterBenchmark(name("BM_Quantize").c_str(),
                                     QuantizeAtTarget, t)
            ->Arg(16384);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerTargetVariants();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
