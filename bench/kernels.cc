/**
 * @file
 * google-benchmark microbenchmarks for the numeric kernels the library is
 * built on: full GEMV, quantized GEMV, sparse projection, top-k selection
 * and the SFU-style Taylor softmax. These are the host-side costs of the
 * algorithm-level experiments (Fig. 11/12).
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/projection.h"
#include "tensor/quantize.h"
#include "tensor/topk.h"

using namespace enmc;
using namespace enmc::tensor;

namespace {

Matrix
randomMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal());
    return m;
}

Vector
randomVector(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

void
BM_GemvFp32(benchmark::State &state)
{
    const size_t l = state.range(0);
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(gemv(w, h));
    state.SetBytesProcessed(int64_t(state.iterations()) * l * d * 4);
}
BENCHMARK(BM_GemvFp32)->Arg(1024)->Arg(8192)->Arg(65536);

void
BM_GemvInt4(benchmark::State &state)
{
    const size_t l = state.range(0);
    const size_t d = 128;
    const QuantizedMatrix wq = quantize(randomMatrix(l, d, 3),
                                        QuantBits::Int4);
    const QuantizedVector hq = quantize(randomVector(d, 4),
                                        QuantBits::Int4);
    for (auto _ : state)
        benchmark::DoNotOptimize(gemvQuantized(wq, hq, {}));
    state.SetItemsProcessed(int64_t(state.iterations()) * l * d);
}
BENCHMARK(BM_GemvInt4)->Arg(1024)->Arg(8192)->Arg(65536);

void
BM_SparseProjection(benchmark::State &state)
{
    const size_t d = state.range(0);
    const size_t k = d / 4;
    Rng rng(5);
    const SparseProjection p(k, d, rng);
    const Vector h = randomVector(d, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.apply(h));
    state.SetItemsProcessed(int64_t(state.iterations()) * p.nonZeros());
}
BENCHMARK(BM_SparseProjection)->Arg(512)->Arg(1024)->Arg(1536);

void
BM_TopK(benchmark::State &state)
{
    const size_t l = state.range(0);
    const Vector z = randomVector(l, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(topkIndices(z, 64));
    state.SetItemsProcessed(int64_t(state.iterations()) * l);
}
BENCHMARK(BM_TopK)->Arg(8192)->Arg(65536)->Arg(262144);

void
BM_ThresholdFilter(benchmark::State &state)
{
    const size_t l = state.range(0);
    const Vector z = randomVector(l, 8);
    const float cut = thresholdForCount(z, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(thresholdIndices(z, cut));
    state.SetItemsProcessed(int64_t(state.iterations()) * l);
}
BENCHMARK(BM_ThresholdFilter)->Arg(8192)->Arg(65536)->Arg(262144);

void
BM_SoftmaxExact(benchmark::State &state)
{
    const Vector z = randomVector(state.range(0), 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(softmax(z));
    state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SoftmaxExact)->Arg(8192)->Arg(65536);

void
BM_SoftmaxTaylor(benchmark::State &state)
{
    const Vector z = randomVector(state.range(0), 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(softmaxTaylor(z));
    state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SoftmaxTaylor)->Arg(8192)->Arg(65536);

void
BM_Quantize(benchmark::State &state)
{
    const Matrix w = randomMatrix(state.range(0), 128, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(quantize(w, QuantBits::Int4));
    state.SetItemsProcessed(int64_t(state.iterations()) * w.size());
}
BENCHMARK(BM_Quantize)->Arg(1024)->Arg(16384);

} // namespace

BENCHMARK_MAIN();
