/**
 * @file
 * google-benchmark microbenchmarks for the numeric kernels the library is
 * built on: full GEMV, quantized GEMV, sparse projection, top-k selection
 * and the SFU-style Taylor softmax. These are the host-side costs of the
 * algorithm-level experiments (Fig. 11/12).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>

#include "common/rng.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/projection.h"
#include "tensor/quantize.h"
#include "tensor/topk.h"
#include "tensor/tune.h"

using namespace enmc;
using namespace enmc::tensor;

namespace {

Matrix
randomMatrix(size_t rows, size_t cols, uint64_t seed)
{
    Rng rng(seed);
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = static_cast<float>(rng.normal());
    return m;
}

Vector
randomVector(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

void
BM_GemvFp32(benchmark::State &state)
{
    const size_t l = state.range(0);
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    Vector z(l);
    for (auto _ : state) {
        kernels::gemvInto(w, h, {}, z, 1);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * l * d * 4);
}
BENCHMARK(BM_GemvFp32)->Arg(1024)->Arg(8192)->Arg(65536);

void
BM_GemvInt4(benchmark::State &state)
{
    const size_t l = state.range(0);
    const size_t d = 128;
    const QuantizedMatrix wq = quantize(randomMatrix(l, d, 3),
                                        QuantBits::Int4);
    const QuantizedVector hq = quantize(randomVector(d, 4),
                                        QuantBits::Int4);
    Vector z(l);
    for (auto _ : state) {
        gemvQuantizedRows(wq, hq.values, hq.scale, {}, z, 0, l);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * l * d);
}
BENCHMARK(BM_GemvInt4)->Arg(1024)->Arg(8192)->Arg(65536);

void
BM_SparseProjection(benchmark::State &state)
{
    const size_t d = state.range(0);
    const size_t k = d / 4;
    Rng rng(5);
    const SparseProjection p(k, d, rng);
    const Vector h = randomVector(d, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.apply(h));
    state.SetItemsProcessed(int64_t(state.iterations()) * p.nonZeros());
}
BENCHMARK(BM_SparseProjection)->Arg(512)->Arg(1024)->Arg(1536);

void
BM_TopK(benchmark::State &state)
{
    const size_t l = state.range(0);
    const Vector z = randomVector(l, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(topkIndices(z, 64));
    state.SetItemsProcessed(int64_t(state.iterations()) * l);
}
BENCHMARK(BM_TopK)->Arg(8192)->Arg(65536)->Arg(262144);

void
BM_MergeTopK(benchmark::State &state)
{
    // The cluster gather path: merge per-shard top-64 lists into the
    // global top-64 (shards hold disjoint, offset index ranges).
    const size_t shards = state.range(0);
    constexpr size_t kPerShard = 64;
    std::vector<std::vector<Scored>> lists(shards);
    for (size_t s = 0; s < shards; ++s) {
        const Vector z = randomVector(8192, 9 + s);
        lists[s] = topkScored(z, kPerShard,
                              static_cast<uint32_t>(s * 8192));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(mergeTopK(lists, kPerShard));
    state.SetItemsProcessed(int64_t(state.iterations()) * shards *
                            kPerShard);
}
BENCHMARK(BM_MergeTopK)->Arg(2)->Arg(4)->Arg(16);

void
BM_ThresholdFilter(benchmark::State &state)
{
    const size_t l = state.range(0);
    const Vector z = randomVector(l, 8);
    const float cut = thresholdForCount(z, 64);
    for (auto _ : state)
        benchmark::DoNotOptimize(thresholdIndices(z, cut));
    state.SetItemsProcessed(int64_t(state.iterations()) * l);
}
BENCHMARK(BM_ThresholdFilter)->Arg(8192)->Arg(65536)->Arg(262144);

void
BM_SoftmaxExact(benchmark::State &state)
{
    const Vector z = randomVector(state.range(0), 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(softmax(z));
    state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SoftmaxExact)->Arg(8192)->Arg(65536);

void
BM_SoftmaxTaylor(benchmark::State &state)
{
    const Vector z = randomVector(state.range(0), 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(softmaxTaylor(z));
    state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SoftmaxTaylor)->Arg(8192)->Arg(65536);

void
BM_Quantize(benchmark::State &state)
{
    const Matrix w = randomMatrix(state.range(0), 128, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(quantize(w, QuantBits::Int4));
    state.SetItemsProcessed(int64_t(state.iterations()) * w.size());
}
BENCHMARK(BM_Quantize)->Arg(1024)->Arg(16384);

// ---------------------------------------------------------------------
// Per-dispatch-target variants, registered for every target this CPU
// supports so one run records the scalar/sse2/avx2 comparison (the
// speedup numbers archived in BENCH_kernels.json).

void
GemvFp32AtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t l = state.range(0);
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    Vector z(l);
    for (auto _ : state) {
        kernels::gemvInto(w, h, {}, z, 1);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * l * d * 4);
}

void
GemvInt4AtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t l = state.range(0);
    const size_t d = 128;
    const QuantizedMatrix wq = quantize(randomMatrix(l, d, 3),
                                        QuantBits::Int4);
    const QuantizedVector hq = quantize(randomVector(d, 4),
                                        QuantBits::Int4);
    Vector z(l);
    for (auto _ : state) {
        gemvQuantizedRows(wq, hq.values, hq.scale, {}, z, 0, l);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * l * d);
}

void
GemvBatchAtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t nq = state.range(0);
    const size_t l = 65536;
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    std::vector<Vector> hs;
    for (size_t q = 0; q < nq; ++q)
        hs.push_back(randomVector(d, 20 + q));
    for (auto _ : state)
        benchmark::DoNotOptimize(gemvBatch(w, hs));
    // Per-item effective bandwidth: the batch reads W once for nq items.
    state.SetBytesProcessed(int64_t(state.iterations()) * nq * l * d * 4);
}

void
SparseProjectionAtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const size_t d = state.range(0);
    Rng rng(5);
    const SparseProjection p(d / 4, d, rng);
    const Vector h = randomVector(d, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(p.apply(h));
    state.SetItemsProcessed(int64_t(state.iterations()) * p.nonZeros());
}

void
QuantizeAtTarget(benchmark::State &state, kernels::Target t)
{
    kernels::setActiveTarget(t);
    const Matrix w = randomMatrix(state.range(0), 128, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(quantize(w, QuantBits::Int4));
    state.SetItemsProcessed(int64_t(state.iterations()) * w.size());
}

void
BM_GemvFp32Parallel(benchmark::State &state)
{
    const size_t workers = state.range(0);
    const size_t l = 65536;
    const size_t d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    Vector z(l);
    for (auto _ : state) {
        kernels::gemvInto(w, h, {}, z, workers);
        benchmark::DoNotOptimize(z.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations()) * l * d * 4);
}
BENCHMARK(BM_GemvFp32Parallel)->Arg(1)->Arg(2)->Arg(4);

void
registerTargetVariants()
{
    for (kernels::Target t : kernels::availableTargets()) {
        const std::string tn = kernels::targetName(t);
        auto name = [&tn](const char *base) {
            return std::string(base) + "<" + tn + ">";
        };
        benchmark::RegisterBenchmark(name("BM_GemvFp32").c_str(),
                                     GemvFp32AtTarget, t)
            ->Arg(1024)->Arg(8192)->Arg(65536);
        benchmark::RegisterBenchmark(name("BM_GemvInt4").c_str(),
                                     GemvInt4AtTarget, t)
            ->Arg(1024)->Arg(8192)->Arg(65536);
        benchmark::RegisterBenchmark(name("BM_GemvBatch").c_str(),
                                     GemvBatchAtTarget, t)
            ->Arg(1)->Arg(4)->Arg(8);
        benchmark::RegisterBenchmark(name("BM_SparseProjection").c_str(),
                                     SparseProjectionAtTarget, t)
            ->Arg(1024);
        benchmark::RegisterBenchmark(name("BM_Quantize").c_str(),
                                     QuantizeAtTarget, t)
            ->Arg(16384);
    }
}

// ---------------------------------------------------------------------
// --check: the autotuning acceptance gate. The tuned configuration
// (ENMC_TUNE_JSON + its kernel pin, or plain cpuid best) must not lose
// to untuned AVX2 defaults on the two headline kernels. Timed as
// min-of-N; a small tolerance absorbs scheduler noise on shared CI.

double
secondsGemvFp32(size_t iters)
{
    const size_t l = 65536, d = 128;
    const Matrix w = randomMatrix(l, d, 1);
    const Vector h = randomVector(d, 2);
    Vector z(l);
    double best = 1e30;
    for (size_t i = 0; i < iters; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        kernels::gemvInto(w, h, {}, z, 1);
        benchmark::DoNotOptimize(z.data());
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0).count());
    }
    return best;
}

double
secondsGemvInt4(size_t iters)
{
    const size_t l = 65536, d = 128;
    const QuantizedMatrix wq = quantize(randomMatrix(l, d, 3),
                                        QuantBits::Int4);
    const QuantizedVector hq = quantize(randomVector(d, 4),
                                        QuantBits::Int4);
    Vector z(l);
    double best = 1e30;
    for (size_t i = 0; i < iters; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        gemvQuantizedRows(wq, hq.values, hq.scale, {}, z, 0, l);
        benchmark::DoNotOptimize(z.data());
        best = std::min(
            best, std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0).count());
    }
    return best;
}

int
runCheck()
{
    const auto avail = kernels::availableTargets();
    if (std::find(avail.begin(), avail.end(), kernels::Target::Avx2) ==
        avail.end()) {
        std::printf("check: SKIP (no AVX2 tier on this CPU/build)\n");
        return 0;
    }
    // Tuned state as installed by loadFromEnv() (or startup defaults).
    const kernels::TuneParams tuned = kernels::tune();
    const kernels::Target tuned_target = kernels::activeTarget();

    constexpr size_t kIters = 40;
    kernels::setActiveTarget(kernels::Target::Avx2);
    kernels::setTuneParams(kernels::TuneParams{});
    secondsGemvFp32(4); // warm caches and the page map
    const double base_fp32 = secondsGemvFp32(kIters);
    const double base_int4 = secondsGemvInt4(kIters);

    kernels::setActiveTarget(tuned_target);
    kernels::setTuneParams(tuned);
    const double tuned_fp32 = secondsGemvFp32(kIters);
    const double tuned_int4 = secondsGemvInt4(kIters);

    const double kTol = 1.05; // scheduler noise on min-of-N
    bool ok = true;
    const struct { const char *name; double base, opt; } rows[] = {
        {"GemvFp32/65536", base_fp32, tuned_fp32},
        {"GemvInt4/65536", base_int4, tuned_int4},
    };
    std::printf("check: autotuned (%s) vs untuned avx2, min of %zu runs\n",
                kernels::targetName(tuned_target), kIters);
    for (const auto &r : rows) {
        const double speedup = r.base / r.opt;
        const bool pass = r.opt <= r.base * kTol;
        std::printf("check: %-16s untuned %8.1f us  tuned %8.1f us  "
                    "(%.2fx) %s\n",
                    r.name, 1e6 * r.base, 1e6 * r.opt, speedup,
                    pass ? "ok" : "REGRESSION");
        ok = ok && pass;
    }
    std::printf("check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    tune::loadFromEnv();
    bool check = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--check") {
            check = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    if (check)
        return runCheck();
    registerTargetVariants();
    // The stock library_build_type context field reflects how the
    // google-benchmark *library* was compiled (the distro package says
    // "debug"); record how the kernels under test were compiled so
    // tools/bench_to_json.sh can refuse debug-build archives.
#ifdef NDEBUG
    benchmark::AddCustomContext("enmc_build_type", "release");
#else
    benchmark::AddCustomContext("enmc_build_type", "debug");
#endif
    benchmark::AddCustomContext("enmc_microarch",
                                kernels::microarchKey());
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
