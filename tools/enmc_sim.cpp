/**
 * @file
 * enmc_sim — command-line front door to the timing simulator.
 *
 * Runs one classification job on a chosen engine and prints the timing /
 * traffic / energy summary. Everything the figure benches compute is
 * reachable here for ad-hoc studies:
 *
 *   enmc_sim --workload XMLCNN-670K --engine enmc --batch 2
 *   enmc_sim --categories 5000000 --hidden 512 --engine tensordimm
 *   enmc_sim --workload S10M --engine all
 *
 * `--metrics-json=FILE` exports every component's stats plus trace spans
 * as one schema-versioned JSON document; `--trace-json=FILE` writes just
 * the Chrome trace (loadable in chrome://tracing / Perfetto).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "energy/model.h"
#include "obs/metrics.h"
#include "fault/injector.h"
#include "nmp/cpu.h"
#include "nmp/engine.h"
#include "runtime/resilience.h"
#include "runtime/system.h"
#include "tensor/tune.h"
#include "workloads/registry.h"

using namespace enmc;

namespace {

struct Options
{
    std::string workload;       //!< registry abbreviation, or empty
    uint64_t categories = 0;    //!< used when no --workload
    uint64_t hidden = 512;
    uint64_t batch = 1;
    uint64_t candidates = 0;    //!< 0 = registry / l/50 default
    std::string engine = "enmc";
    bool sequencer = true;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: enmc_sim [--workload ABBR | --categories N [--hidden D]]\n"
        "                [--batch B] [--candidates M]\n"
        "                [--engine enmc|nda|chameleon|tensordimm|cpu|all]\n"
        "                [--no-sequencer]\n"
        "                [--metrics-json=FILE] [--trace-json=FILE]\n\n"
        "workloads: LSTM-W33K Transformer-W268K GNMT-E32K XMLCNN-670K\n"
        "           S1M S10M S100M\n");
    std::exit(2);
}

uint64_t
parseU64(const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0')
        usage();
    return v;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (a == "--workload")
            opt.workload = next();
        else if (a == "--categories")
            opt.categories = parseU64(next());
        else if (a == "--hidden")
            opt.hidden = parseU64(next());
        else if (a == "--batch")
            opt.batch = parseU64(next());
        else if (a == "--candidates")
            opt.candidates = parseU64(next());
        else if (a == "--engine")
            opt.engine = next();
        else if (a == "--no-sequencer")
            opt.sequencer = false;
        else if (a.rfind("--metrics-json=", 0) == 0 ||
                 a.rfind("--trace-json=", 0) == 0)
            continue; // handled by obs::initMetrics
        else
            usage();
    }
    if (opt.workload.empty() && opt.categories == 0)
        usage();
    return opt;
}

runtime::JobSpec
makeJob(const Options &opt)
{
    runtime::JobSpec spec;
    if (!opt.workload.empty()) {
        const workloads::Workload w = workloads::findWorkload(opt.workload);
        spec.categories = w.categories;
        spec.hidden = w.hidden;
        spec.candidates = opt.candidates ? opt.candidates
                                         : w.nmpCandidates();
        spec.sigmoid = w.normalization == nn::Normalization::Sigmoid;
    } else {
        spec.categories = opt.categories;
        spec.hidden = opt.hidden;
        spec.candidates =
            opt.candidates ? opt.candidates : opt.categories / 50;
    }
    spec.reduced = std::max<uint64_t>(1, spec.hidden / 4);
    spec.batch = opt.batch;
    return spec;
}

void
printJob(const runtime::JobSpec &spec)
{
    std::printf("job: l=%llu d=%llu k=%llu batch=%llu candidates=%llu\n",
                static_cast<unsigned long long>(spec.categories),
                static_cast<unsigned long long>(spec.hidden),
                static_cast<unsigned long long>(spec.reduced),
                static_cast<unsigned long long>(spec.batch),
                static_cast<unsigned long long>(spec.candidates));
    std::printf("classifier footprint: %.2f GB FP32; screener: %.2f GB "
                "INT4\n\n",
                spec.categories * spec.hidden * 4.0 / 1e9,
                spec.categories * spec.reduced * 0.5 / 1e9);
}

void
runEnmc(const runtime::JobSpec &spec, bool sequencer)
{
    runtime::SystemConfig cfg;
    cfg.enmc.hw_tile_sequencer = sequencer;
    // ENMC_FAULT=1 (+ ENMC_FAULT_BER / _SEED / _ECC / _STUCK_RANKS ...)
    // runs the job through the resilient backend instead: stuck ranks
    // are blacklisted and retry backoff shows up in the latency.
    cfg.fault = fault::FaultConfig::fromEnv();
    if (cfg.fault.enabled) {
        cfg.resilient = true;
        const runtime::ResilientBackend backend(cfg);
        const auto r = backend.runJob(spec);
        std::printf("ENMC under fault injection (seed=%llu BER=%g ECC=%s, "
                    "%llu/%llu healthy ranks):\n",
                    static_cast<unsigned long long>(cfg.fault.seed),
                    cfg.fault.data_ber, cfg.fault.ecc ? "on" : "off",
                    static_cast<unsigned long long>(r.ranks),
                    static_cast<unsigned long long>(cfg.totalRanks()));
        std::printf("  latency: %.2f us%s\n\n", 1e6 * r.seconds,
                    r.extrapolated ? " (truncated + scaled)" : "");
        return;
    }
    runtime::EnmcSystem sys(cfg);
    const auto r = sys.runTiming(spec);
    std::printf("ENMC (8ch x 8 ranks, DDR4-2400%s):\n",
                sequencer ? ", tile sequencer" : "");
    std::printf("  latency: %.2f us%s\n", 1e6 * r.seconds,
                r.extrapolated ? " (tile-extrapolated)" : "");
    std::printf("  rank cycles: %llu @1200 MHz\n",
                static_cast<unsigned long long>(r.rank_cycles));
    std::printf("  traffic/inference: screening %.2f MB + candidates "
                "%.2f MB (all ranks)\n",
                r.totalScreenBytes() / 1e6 / spec.batch,
                r.totalExecBytes() / 1e6 / spec.batch);
    energy::DramActivity act;
    act.reads = r.rank.dram_reads;
    act.writes = r.rank.dram_writes;
    act.activates = r.rank.dram_acts;
    act.refreshes = r.rank.dram_refs;
    act.seconds = r.seconds;
    const auto e = energy::scaleEnergy(
        energy::rankEnergy(act, energy::enmcLogicPower()), r.ranks);
    std::printf("  energy: %.2f uJ (static %.2f / access %.2f / logic "
                "%.2f)\n\n",
                1e6 * e.total(), 1e6 * e.dram_static_j,
                1e6 * e.dram_access_j, 1e6 * e.logic_j);
}

void
runBaseline(const runtime::JobSpec &spec, const nmp::EngineConfig &cfg)
{
    runtime::EnmcSystem sys{runtime::SystemConfig{}};
    arch::RankTask task = sys.makeRankTask(spec);
    const uint64_t max_rows = 64 * 1024;
    double scale = 1.0;
    if (task.categories > max_rows) {
        scale = static_cast<double>(task.categories) / max_rows;
        task.expected_candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(task.expected_candidates / scale));
        task.categories = max_rows;
    }
    nmp::NmpEngine engine(cfg,
                          dram::Organization::paperTable3().singleRankView(),
                          dram::Timing::ddr4_2400());
    const auto r = engine.run(task);
    const double seconds = cyclesToSeconds(
        static_cast<Cycles>(r.cycles * scale), 1200e6);
    std::printf("%s (with approximate screening):\n",
                nmp::engineKindName(cfg.kind));
    std::printf("  latency: %.2f us\n\n", 1e6 * seconds);
}

void
runCpu(const runtime::JobSpec &spec)
{
    nmp::CpuConfig cpu;
    const double full = nmp::cpuFullClassificationTime(
        cpu, spec.categories, spec.hidden, spec.batch);
    const double as = nmp::cpuScreeningTime(cpu, spec.categories,
                                            spec.hidden, spec.reduced,
                                            spec.candidates, spec.batch,
                                            spec.quant);
    std::printf("CPU (Xeon 8280 roofline):\n");
    std::printf("  full classification:  %.2f us\n", 1e6 * full);
    std::printf("  + approximate screen: %.2f us (%.1fx)\n\n", 1e6 * as,
                full / as);
}

} // namespace

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "enmc_sim");
    const Options opt = parseArgs(argc, argv);
    const runtime::JobSpec spec = makeJob(opt);
    printJob(spec);

    const bool all = opt.engine == "all";
    if (all || opt.engine == "cpu")
        runCpu(spec);
    if (all || opt.engine == "nda")
        runBaseline(spec, nmp::EngineConfig::nda());
    if (all || opt.engine == "chameleon")
        runBaseline(spec, nmp::EngineConfig::chameleon());
    if (all || opt.engine == "tensordimm")
        runBaseline(spec, nmp::EngineConfig::tensorDimm());
    if (all || opt.engine == "enmc")
        runEnmc(spec, opt.sequencer);
    obs::writeMetrics(metrics);
    return 0;
}
