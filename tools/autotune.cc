/**
 * @file
 * One-driver design-space exploration across both tuning domains:
 *
 *  - the HOST space: kernel dispatch target + tensor::TuneParams
 *    (GEMV chunking, batch tile shape, top-k cutoff), scored by timing
 *    the library's own kernels on this machine;
 *  - the SIMULATED space: ENMC design points (ranks per channel,
 *    screener MAC width, instruction FIFO depth, prefetch tiles),
 *    scored on simulated DDR cycles of a representative job.
 *
 * Both run the same search core — greedy coordinate descent over
 * discrete axes with memoized scores — and the result is persisted as
 * one schema-versioned `enmc.tune` document keyed by the host's
 * microarchitecture (see src/tensor/tune.h). Runtimes pick the host
 * block up via `ENMC_TUNE_JSON=`; the sim block is a recorded design
 * point for tools that opt in, never applied implicitly.
 *
 * Usage: autotune [--quick] [--host-only|--sim-only] [--out=FILE]
 *
 * `--quick` shrinks every axis and the timing repeats for CI smoke
 * runs; `--out` defaults to enmc_tune.json and existing entries for
 * other microarchitectures in that file are preserved.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/json.h"
#include "runtime/system.h"
#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/quantize.h"
#include "tensor/topk.h"
#include "tensor/tune.h"

using namespace enmc;
using namespace enmc::tensor;

namespace {

// ---------------------------------------------------------------------
// The shared search core.

/** One discrete dimension of a design space. */
struct Axis
{
    std::string name;
    std::vector<uint64_t> values;
    size_t start = 0; //!< index of the default value
};

/** A design point: one value index per axis. */
using Point = std::vector<size_t>;

/**
 * Greedy coordinate descent: sweep the axes in order, holding the rest
 * of the point fixed and keeping the best value of each, until a full
 * sweep improves nothing (or `max_sweeps` is hit). Scores are memoized,
 * so revisiting a point is free. Deterministic and derivative-free —
 * the same core explores microseconds (host) and DDR cycles (sim).
 */
template <typename ScoreFn>
Point
coordinateDescent(const std::vector<Axis> &axes, ScoreFn &&score,
                  size_t max_sweeps, double *best_out)
{
    std::map<Point, double> memo;
    auto eval = [&](const Point &p) {
        const auto it = memo.find(p);
        if (it != memo.end())
            return it->second;
        const double s = score(p);
        memo.emplace(p, s);
        return s;
    };

    Point best(axes.size());
    for (size_t a = 0; a < axes.size(); ++a)
        best[a] = axes[a].start;
    double best_score = eval(best);

    for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        bool improved = false;
        for (size_t a = 0; a < axes.size(); ++a) {
            Point p = best;
            for (size_t i = 0; i < axes[a].values.size(); ++i) {
                p[a] = i;
                const double s = eval(p);
                if (s < best_score) {
                    best_score = s;
                    best = p;
                    improved = true;
                }
            }
            std::printf("  %-22s -> %-10llu (score %.4g)\n",
                        axes[a].name.c_str(),
                        static_cast<unsigned long long>(
                            axes[a].values[best[a]]),
                        best_score);
        }
        if (!improved)
            break;
    }
    if (best_out != nullptr)
        *best_out = best_score;
    return best;
}

/** Index of the axis value closest to `v` (for seeding at defaults). */
size_t
closestIndex(const std::vector<uint64_t> &values, uint64_t v)
{
    size_t best = 0;
    for (size_t i = 1; i < values.size(); ++i) {
        const auto d = [&](size_t j) {
            return values[j] > v ? values[j] - v : v - values[j];
        };
        if (d(i) < d(best))
            best = i;
    }
    return best;
}

Axis
makeAxis(std::string name, std::vector<uint64_t> values, uint64_t dflt)
{
    Axis a;
    a.start = closestIndex(values, dflt);
    a.name = std::move(name);
    a.values = std::move(values);
    return a;
}

// ---------------------------------------------------------------------
// Host space: kernel target + TuneParams, scored in wall seconds.

/** Fixed operand set for host scoring (built once, reused per point). */
struct HostWorkload
{
    Matrix w;
    Vector h;
    std::vector<Vector> hs;
    QuantizedMatrix wq;
    QuantizedVector hq;
    Vector scores;

    explicit HostWorkload(size_t rows)
        : w(rows, 128), h(128), scores(rows)
    {
        Rng rng(1234);
        for (size_t i = 0; i < w.size(); ++i)
            w.data()[i] = static_cast<float>(rng.normal());
        for (auto &x : h)
            x = static_cast<float>(rng.normal());
        for (size_t q = 0; q < 8; ++q) {
            hs.emplace_back(128);
            for (auto &x : hs.back())
                x = static_cast<float>(rng.normal());
        }
        wq = quantize(w, QuantBits::Int4);
        hq = quantize(h, QuantBits::Int4);
        for (auto &x : scores)
            x = static_cast<float>(rng.normal());
    }

    /** One pass over the kernels TuneParams steers; returns seconds. */
    double run() const
    {
        const auto t0 = std::chrono::steady_clock::now();
        const size_t rows = w.rows();
        Vector z(rows);
        kernels::gemvInto(w, h, {}, z, 1);
        gemvQuantizedRows(wq, hq.values, hq.scale, {}, z, 0, rows);
        std::vector<Vector> outs(hs.size(), Vector(rows));
        std::vector<const float *> hp;
        std::vector<float *> op;
        for (size_t q = 0; q < hs.size(); ++q) {
            hp.push_back(hs[q].data());
            op.push_back(outs[q].data());
        }
        kernels::gemvBatchInto(w, hp.data(), op.data(), hs.size(), {}, 1);
        const auto top = topkScored(scores, 64);
        std::vector<std::vector<Scored>> shards(4, top);
        const auto merged = mergeTopK(shards, 64);
        if (merged.empty() && rows > 0)
            ENMC_FATAL("autotune: degenerate host workload");
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    }
};

struct HostSpace
{
    std::vector<kernels::Target> targets;
    std::vector<Axis> axes;
};

HostSpace
hostSpace(bool quick)
{
    const kernels::TuneParams d;
    HostSpace s;
    s.targets = kernels::availableTargets();
    // Scalar is the reference tier, never a contender; drop it when any
    // vector tier exists so the sweep spends time where wins live.
    if (s.targets.size() > 1)
        s.targets.erase(s.targets.begin());
    std::vector<uint64_t> tix(s.targets.size());
    for (size_t i = 0; i < tix.size(); ++i)
        tix[i] = i;
    Axis target = makeAxis("kernels", tix, tix.size() - 1);
    target.start = tix.size() - 1; // cpuid best
    s.axes.push_back(std::move(target));

    if (quick) {
        s.axes.push_back(makeAxis("gemv_row_chunk", {512, 1024, 4096},
                                  d.gemv_row_chunk));
        s.axes.push_back(makeAxis("gemv_parallel_min_work",
                                  {1u << 20, 1u << 21},
                                  d.gemv_parallel_min_work));
        s.axes.push_back(
            makeAxis("batch_query_tile", {4, 8}, d.batch_query_tile));
        s.axes.push_back(
            makeAxis("batch_row_tile", {512, 1024}, d.batch_row_tile));
        s.axes.push_back(makeAxis("topk_scan_cutoff", {0, 1u << 14},
                                  d.topk_scan_cutoff));
    } else {
        s.axes.push_back(makeAxis("gemv_row_chunk",
                                  {128, 256, 512, 1024, 2048, 4096, 8192},
                                  d.gemv_row_chunk));
        s.axes.push_back(makeAxis(
            "gemv_parallel_min_work",
            {1u << 18, 1u << 19, 1u << 20, 1u << 21, 1u << 22, 1u << 23},
            d.gemv_parallel_min_work));
        s.axes.push_back(makeAxis("batch_query_tile", {1, 2, 4, 8, 16, 32},
                                  d.batch_query_tile));
        s.axes.push_back(makeAxis("batch_row_tile",
                                  {128, 256, 512, 1024, 2048, 4096},
                                  d.batch_row_tile));
        s.axes.push_back(makeAxis(
            "topk_scan_cutoff",
            {0, 1u << 10, 1u << 12, 1u << 14, 1u << 16, 1u << 18},
            d.topk_scan_cutoff));
    }
    return s;
}

kernels::TuneParams
paramsAt(const HostSpace &s, const Point &p)
{
    kernels::TuneParams t;
    t.gemv_row_chunk = s.axes[1].values[p[1]];
    t.gemv_parallel_min_work = s.axes[2].values[p[2]];
    t.batch_query_tile = s.axes[3].values[p[3]];
    t.batch_row_tile = s.axes[4].values[p[4]];
    t.topk_scan_cutoff = s.axes[5].values[p[5]];
    return t;
}

/** Best (microarch key, tuned host config) for this machine. */
tune::TunedConfig
tuneHost(bool quick, double *seconds_out)
{
    const size_t rows = quick ? 16384 : 65536;
    const size_t repeats = quick ? 2 : 5;
    const HostWorkload work(rows);
    const HostSpace space = hostSpace(quick);

    auto score = [&](const Point &p) {
        kernels::setActiveTarget(space.targets[p[0]]);
        kernels::setTuneParams(paramsAt(space, p));
        work.run(); // warm caches / page in under this config
        double best = 1e30;
        for (size_t i = 0; i < repeats; ++i)
            best = std::min(best, work.run());
        return best;
    };

    std::printf("host space: %zu axes, %zu kernel targets, %zu rows\n",
                space.axes.size(), space.targets.size(), rows);
    double best_seconds = 0.0;
    const Point best = coordinateDescent(space.axes, score,
                                         quick ? 2 : 4, &best_seconds);

    tune::TunedConfig cfg;
    cfg.host = paramsAt(space, best);
    cfg.kernels_target = kernels::targetName(space.targets[best[0]]);
    if (seconds_out != nullptr)
        *seconds_out = best_seconds;
    // Leave the process in the tuned state (harmless; tool exits next).
    kernels::setActiveTarget(space.targets[best[0]]);
    kernels::setTuneParams(cfg.host);
    return cfg;
}

// ---------------------------------------------------------------------
// Simulated space: ENMC design points, scored in simulated DDR cycles.

std::vector<Axis>
simSpace(bool quick)
{
    const runtime::SystemConfig d;
    std::vector<Axis> axes;
    if (quick) {
        axes.push_back(
            makeAxis("ranks_per_channel", {4, 8}, d.org.ranks));
        axes.push_back(makeAxis("int4_macs", {128, 256}, d.enmc.int4_macs));
        axes.push_back(makeAxis("inst_fifo_depth", {64, 128},
                                d.enmc.inst_fifo_depth));
        axes.push_back(makeAxis("prefetch_tiles", {8, 16},
                                d.enmc.prefetch_tiles));
    } else {
        axes.push_back(
            makeAxis("ranks_per_channel", {2, 4, 8, 16}, d.org.ranks));
        axes.push_back(makeAxis("int4_macs", {64, 128, 256, 512},
                                d.enmc.int4_macs));
        axes.push_back(makeAxis("inst_fifo_depth", {16, 32, 64, 128, 256},
                                d.enmc.inst_fifo_depth));
        axes.push_back(makeAxis("prefetch_tiles", {2, 4, 8, 16, 32},
                                d.enmc.prefetch_tiles));
    }
    return axes;
}

runtime::JobSpec
simJob(bool quick)
{
    runtime::JobSpec spec;
    spec.categories = quick ? uint64_t{65536} : uint64_t{262144};
    spec.hidden = 512;
    spec.reduced = 128;
    spec.batch = 4;
    spec.candidates = 64;
    return spec;
}

tune::SimTune
tuneSim(bool quick)
{
    const std::vector<Axis> axes = simSpace(quick);
    const runtime::JobSpec spec = simJob(quick);

    auto score = [&](const Point &p) {
        runtime::SystemConfig cfg;
        cfg.org.ranks = static_cast<uint32_t>(axes[0].values[p[0]]);
        cfg.enmc.int4_macs = axes[1].values[p[1]];
        cfg.enmc.inst_fifo_depth = axes[2].values[p[2]];
        cfg.enmc.prefetch_tiles = axes[3].values[p[3]];
        const runtime::EnmcSystem sys(cfg);
        const runtime::TimingResult r = sys.runTiming(spec);
        return static_cast<double>(r.rank_cycles);
    };

    std::printf("sim space: %zu axes, %llu categories\n", axes.size(),
                static_cast<unsigned long long>(spec.categories));
    double best_cycles = 0.0;
    const Point best =
        coordinateDescent(axes, score, quick ? 2 : 4, &best_cycles);

    tune::SimTune st;
    st.ranks_per_channel = axes[0].values[best[0]];
    st.int4_macs = axes[1].values[best[1]];
    st.inst_fifo_depth = axes[2].values[best[2]];
    st.prefetch_tiles = axes[3].values[best[3]];
    st.ddr_cycles = static_cast<uint64_t>(best_cycles);
    return st;
}

// ---------------------------------------------------------------------

bool
flagPresent(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

std::string
stringFlag(int argc, char **argv, const char *prefix,
           const std::string &dflt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(std::strlen(prefix));
    }
    return dflt;
}

/** Read `path` as an enmc.tune doc; fresh skeleton when absent. */
obs::Json
loadOrInitDocument(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        obs::Json doc = obs::Json::object();
        doc.set("schema", "enmc.tune");
        doc.set("schema_version", uint64_t{1});
        doc.set("tool", "autotune");
        doc.set("configs", obs::Json::object());
        return doc;
    }
    std::ostringstream text;
    text << in.rdbuf();
    obs::Json doc;
    std::string err;
    if (!obs::Json::parse(text.str(), doc, &err))
        ENMC_FATAL("autotune: existing '", path, "' is not valid JSON (",
                   err, "); move it aside or pick another --out");
    // Validate so we never silently clobber an unrelated file.
    tune::findConfig(doc, "__probe__");
    return doc;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = flagPresent(argc, argv, "--quick");
    const bool host_only = flagPresent(argc, argv, "--host-only");
    const bool sim_only = flagPresent(argc, argv, "--sim-only");
    const std::string out =
        stringFlag(argc, argv, "--out=", "enmc_tune.json");
    if (flagPresent(argc, argv, "--help")) {
        std::printf("usage: autotune [--quick] [--host-only|--sim-only] "
                    "[--out=FILE]\n");
        return 0;
    }

    const std::string &key = kernels::microarchKey();
    std::printf("autotune: microarch %s%s\n", key.c_str(),
                quick ? " (quick)" : "");

    tune::TunedConfig cfg;
    double host_seconds = 0.0;
    if (!sim_only)
        cfg = tuneHost(quick, &host_seconds);
    if (!host_only)
        cfg.sim = tuneSim(quick);

    obs::Json doc = loadOrInitDocument(out);
    obs::Json entry = tune::configToJson(cfg);
    if (!sim_only) {
        obs::Json meas = obs::Json::object();
        meas.set("host_seconds", host_seconds);
        entry.set("measurements", std::move(meas));
    }
    // set() replaces an existing key, so other microarch entries in the
    // document (and a stale entry for this one) are preserved/updated.
    obs::Json configs = doc.at("configs");
    configs.set(key, std::move(entry));
    doc.set("configs", std::move(configs));

    std::ofstream outf(out);
    if (!outf)
        ENMC_FATAL("autotune: cannot write '", out, "'");
    outf << doc.dump(2) << "\n";
    outf.close();

    // Reload through the runtime path as a self-check: the file we just
    // wrote must parse and contain this microarch's entry.
    const auto back = tune::findConfig(obs::Json::parseOrDie(doc.dump(2)),
                                       key);
    if (!back.has_value() || !(back->host == cfg.host))
        ENMC_FATAL("autotune: reload self-check failed");

    std::printf("autotune: wrote %s (key %s", out.c_str(), key.c_str());
    if (!cfg.kernels_target.empty())
        std::printf(", kernels=%s", cfg.kernels_target.c_str());
    if (cfg.sim.has_value())
        std::printf(", sim ddr_cycles=%llu",
                    static_cast<unsigned long long>(cfg.sim->ddr_cycles));
    std::printf(")\n");
    return 0;
}
