#!/usr/bin/env python3
"""Validate an ENMC metrics or tune JSON document.

Usage: tools/check_metrics.py [--expect-switch] metrics.json [more.json ...]

Files are dispatched on their "schema" field: "enmc.metrics" documents
get the counter-invariant checks below; "enmc.tune" documents (written
by tools/autotune, consumed via ENMC_TUNE_JSON=) are checked for
  - schema_version == 1 and a non-empty "configs" map keyed by
    microarch strings shaped like "<vendor>-f<family>m<model>-<target>";
  - per entry: a "host" map holding only the known TuneParams fields
    (non-negative integers, chunk/tile sizes positive), an optional
    "kernels" pin naming a known dispatch target, an optional "sim"
    design point with positive integer fields.

Checks, per file:
  - schema == "enmc.metrics" and schema_version == 1;
  - at least one stat group, each with counters/scalars/histograms maps;
  - histogram bookkeeping: total == sum(bins) + underflow + overflow,
    and len(bins) >= 1 with lo < hi;
  - scalar bookkeeping: count == 0 implies sum == 0; count > 0 implies
    min <= mean <= max;
  - ECC accounting, wherever a group carries the fault mirror counters:
    faultInjectedWords == faultCorrected + faultDetected + faultEscaped;
  - per-class ECC accounting, for each protection class mirrored into a
    group (faultNone*/faultWeak*/faultStrong*): {class}Injected ==
    {class}Corrected + {class}Detected + {class}Escaped;
  - ECC overhead accounting, wherever a group carries the controller's
    overhead counters: eccRedundancyReads > 0 or eccDecodeCycles > 0
    requires eccProtectedReads > 0 (with the overhead model off or no
    ECC-protected traffic, no redundancy bandwidth may be charged);
  - batcher accounting, wherever a group carries the dynamic-batching
    counters: batches == flushSize + flushDeadline + flushDrain, and the
    batchSize histogram records exactly one sample per dispatched batch;
  - cluster accounting, whenever a cluster.router group is present: the
    per-node dispatchedBatches counters (cluster.node.*) sum to the
    router's shardDispatches fan-out total, deadDispatches == 0 (a dead
    node must never receive traffic), and the fanOut histogram records
    exactly one sample per routed batch;
  - candidate-cache accounting, whenever a screening.cache group is
    present: lookups == hits + misses, hits == validated + rejected,
    fullScreens == misses + rejected, lookups == screenerBypass +
    fullScreens, and evictions <= insertions; when serve.loop rides
    along, its cacheHits/cacheMisses must match the hit/miss latency
    histogram totals, stay within measuredRequests, agree with the
    servedEpoch sample count, and never exceed the cache's validated
    hits; when the --check-cache bench group rides along, its hit p50
    must not exceed its miss p50 (hits skip the screener, so the
    latency win must be visible); whenever a runtime.snapshot group is
    present, publishes >=
    swaps, collected <= retired, and the loop's maximum served epoch
    cannot exceed the published-epoch count;
  - planner accounting, whenever a plan group is present (--backend=auto):
    plans == warmupPlans + explorePlans + steadyPlans, the per-backend
    dispatch.* counters sum to plans, deadDispatches == 0 (an unavailable
    backend must never be routed to), and plans == the batcher's
    dispatched-batch count when a serve.batcher group rides along;
    with --expect-switch the document must also record switchEvents >= 1
    (used by CI's traffic-shift scenario);
  - traceEvents is a list whose entries carry name/ph/pid/ts (complete
    "X" events also carry dur >= 0).

Exits non-zero with a per-file report on the first violated file.
"""

import json
import re
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    return 1


def check_group(path, name, group):
    errors = 0
    for section in ("counters", "scalars", "histograms"):
        if not isinstance(group.get(section), dict):
            errors += fail(path, f"group {name!r} missing map {section!r}")
    if errors:
        return errors

    for sname, s in group["scalars"].items():
        if s["count"] == 0:
            if s["sum"] != 0:
                errors += fail(
                    path, f"{name}.{sname}: count == 0 but sum == {s['sum']}")
        elif not (s["min"] <= s["mean"] <= s["max"]):
            errors += fail(
                path,
                f"{name}.{sname}: min/mean/max out of order: "
                f"{s['min']}/{s['mean']}/{s['max']}")

    for hname, h in group["histograms"].items():
        if not h["bins"]:
            errors += fail(path, f"{name}.{hname}: empty bins")
            continue
        if not h["lo"] < h["hi"]:
            errors += fail(path, f"{name}.{hname}: lo {h['lo']} >= hi {h['hi']}")
        accounted = sum(h["bins"]) + h["underflow"] + h["overflow"]
        if accounted != h["total"]:
            errors += fail(
                path,
                f"{name}.{hname}: total {h['total']} != bins+under+over "
                f"{accounted}")

    counters = group["counters"]
    if "faultInjectedWords" in counters:
        injected = counters["faultInjectedWords"]["value"]
        parts = sum(counters[k]["value"]
                    for k in ("faultCorrected", "faultDetected",
                              "faultEscaped"))
        if injected != parts:
            errors += fail(
                path,
                f"{name}: ECC accounting broken: injected {injected} != "
                f"corrected+detected+escaped {parts}")

    for cls in ("faultNone", "faultWeak", "faultStrong"):
        if f"{cls}Injected" not in counters:
            continue
        injected = counters[f"{cls}Injected"]["value"]
        parts = sum(counters[f"{cls}{k}"]["value"]
                    for k in ("Corrected", "Detected", "Escaped"))
        if injected != parts:
            errors += fail(
                path,
                f"{name}: per-class ECC accounting broken: {cls}Injected "
                f"{injected} != corrected+detected+escaped {parts}")

    if "eccRedundancyReads" in counters or "eccDecodeCycles" in counters:
        protected = counters.get("eccProtectedReads", {}).get("value", 0)
        redundancy = counters.get("eccRedundancyReads", {}).get("value", 0)
        decode = counters.get("eccDecodeCycles", {}).get("value", 0)
        if (redundancy > 0 or decode > 0) and protected == 0:
            errors += fail(
                path,
                f"{name}: ECC overhead accounting broken: charged "
                f"{redundancy} redundancy reads / {decode} decode cycles "
                f"with no ECC-protected reads")

    if "batches" in counters and "flushSize" in counters:
        batches = counters["batches"]["value"]
        reasons = sum(counters[k]["value"]
                      for k in ("flushSize", "flushDeadline", "flushDrain"))
        if batches != reasons:
            errors += fail(
                path,
                f"{name}: batch accounting broken: batches {batches} != "
                f"size+deadline+drain {reasons}")
        sizes = group["histograms"].get("batchSize")
        if sizes is not None and sizes["total"] != batches:
            errors += fail(
                path,
                f"{name}: batchSize histogram total {sizes['total']} != "
                f"batches counter {batches}")
    return errors


def check_cluster(path, groups):
    """Cross-group cluster-fabric invariants (router vs per-node tallies)."""
    router = groups.get("cluster.router")
    if router is None:
        return 0
    errors = 0
    counters = router.get("counters", {})

    dead = counters.get("deadDispatches", {}).get("value", 0)
    if dead != 0:
        errors += fail(
            path,
            f"cluster.router: {dead} dispatches were sent to a dead node")

    fan_out = counters.get("shardDispatches", {}).get("value")
    node_total = sum(
        g.get("counters", {}).get("dispatchedBatches", {}).get("value", 0)
        for gname, g in groups.items()
        if gname.startswith("cluster.node."))
    if fan_out is not None and node_total != fan_out:
        errors += fail(
            path,
            f"cluster accounting broken: per-node dispatchedBatches sum "
            f"{node_total} != router shardDispatches {fan_out}")

    routed = counters.get("routedBatches", {}).get("value")
    fanout_hist = router.get("histograms", {}).get("fanOut")
    if routed is not None and fanout_hist is not None \
            and fanout_hist["total"] != routed:
        errors += fail(
            path,
            f"cluster.router: fanOut histogram total {fanout_hist['total']}"
            f" != routedBatches counter {routed}")
    return errors


def check_cache(path, groups):
    """Cross-group candidate-cache / snapshot-slot invariants."""
    errors = 0
    cache = groups.get("screening.cache")
    if cache is not None:
        c = cache.get("counters", {})

        def cval(key):
            return c.get(key, {}).get("value", 0)

        if cval("lookups") != cval("hits") + cval("misses"):
            errors += fail(
                path,
                f"screening.cache: lookups {cval('lookups')} != "
                f"hits+misses {cval('hits') + cval('misses')}")
        if cval("hits") != cval("validated") + cval("rejected"):
            errors += fail(
                path,
                f"screening.cache: hits {cval('hits')} != "
                f"validated+rejected {cval('validated') + cval('rejected')}")
        if cval("fullScreens") != cval("misses") + cval("rejected"):
            errors += fail(
                path,
                f"screening.cache: fullScreens {cval('fullScreens')} != "
                f"misses+rejected {cval('misses') + cval('rejected')}")
        if cval("lookups") != cval("screenerBypass") + cval("fullScreens"):
            errors += fail(
                path,
                f"screening.cache: lookups {cval('lookups')} != "
                f"bypass+fullScreens "
                f"{cval('screenerBypass') + cval('fullScreens')}")
        if cval("evictions") > cval("insertions"):
            errors += fail(
                path,
                f"screening.cache: {cval('evictions')} evictions exceed "
                f"{cval('insertions')} insertions")

    loop = groups.get("serve.loop")
    if loop is not None and "cacheHits" in loop.get("counters", {}):
        lc = loop["counters"]
        hits = lc["cacheHits"]["value"]
        misses = lc.get("cacheMisses", {}).get("value", 0)
        for hname, count in (("latencyHitUs", hits),
                             ("latencyMissUs", misses)):
            hist = loop.get("histograms", {}).get(hname)
            if hist is not None and hist["total"] != count:
                errors += fail(
                    path,
                    f"serve.loop: {hname} histogram total {hist['total']} "
                    f"!= counter {count}")
        measured = lc.get("measuredRequests", {}).get("value", 0)
        if hits + misses > measured:
            errors += fail(
                path,
                f"serve.loop: classified responses {hits + misses} exceed "
                f"measuredRequests {measured}")
        epoch = loop.get("scalars", {}).get("servedEpoch")
        if epoch is not None and epoch["count"] != hits + misses:
            errors += fail(
                path,
                f"serve.loop: servedEpoch sampled {epoch['count']} times "
                f"but hits+misses == {hits + misses}")
        if cache is not None:
            validated = cache.get("counters", {}).get("validated",
                                                      {}).get("value", 0)
            if hits > validated:
                errors += fail(
                    path,
                    f"cache accounting broken: serve.loop served {hits} "
                    f"cache hits but the cache validated only {validated}")

    bench = groups.get("bench.serving.cache")
    if bench is not None:
        scalars = bench.get("scalars", {})
        hit = scalars.get("hitP50Us")
        miss = scalars.get("missP50Us")
        if hit is not None and miss is not None and hit["count"] > 0 \
                and miss["count"] > 0 and hit["mean"] > miss["mean"]:
            errors += fail(
                path,
                f"cache latency win missing: hit p50 {hit['mean']} us "
                f"exceeds miss p50 {miss['mean']} us")

    snap = groups.get("runtime.snapshot")
    if snap is not None:
        sc = snap.get("counters", {})
        publishes = sc.get("publishes", {}).get("value", 0)
        swaps = sc.get("swaps", {}).get("value", 0)
        if publishes < swaps:
            errors += fail(
                path,
                f"runtime.snapshot: {swaps} swaps exceed {publishes} "
                f"publishes")
        retired = sc.get("retired", {}).get("value", 0)
        collected = sc.get("collected", {}).get("value", 0)
        if collected > retired:
            errors += fail(
                path,
                f"runtime.snapshot: {collected} collected exceed "
                f"{retired} retired")
        if loop is not None:
            epoch = loop.get("scalars", {}).get("servedEpoch")
            if epoch is not None and epoch["count"] > 0 \
                    and epoch["max"] > publishes:
                errors += fail(
                    path,
                    f"snapshot accounting broken: served epoch "
                    f"{epoch['max']} exceeds {publishes} published epochs")
    return errors


def check_planner(path, groups, expect_switch=False):
    """Cross-group offload-planner invariants (plan vs serve tallies)."""
    plan = groups.get("plan")
    if plan is None:
        if expect_switch:
            return fail(path, "--expect-switch given but no 'plan' group")
        return 0
    errors = 0
    counters = plan.get("counters", {})

    def val(key):
        return counters.get(key, {}).get("value", 0)

    plans = val("plans")
    kinds = val("warmupPlans") + val("explorePlans") + val("steadyPlans")
    if plans != kinds:
        errors += fail(
            path,
            f"plan accounting broken: plans {plans} != "
            f"warmup+explore+steady {kinds}")

    dispatch_total = sum(c.get("value", 0) for cname, c in counters.items()
                         if cname.startswith("dispatch."))
    if dispatch_total != plans:
        errors += fail(
            path,
            f"plan accounting broken: per-backend dispatch sum "
            f"{dispatch_total} != plans {plans}")

    dead = val("deadDispatches")
    if dead != 0:
        errors += fail(
            path,
            f"plan: {dead} dispatches were routed to an unavailable backend")

    batcher = groups.get("serve.batcher")
    if batcher is not None:
        batches = batcher.get("counters", {}).get("batches",
                                                  {}).get("value")
        if batches is not None and plans != batches:
            errors += fail(
                path,
                f"plan/serve accounting broken: plans {plans} != "
                f"dispatched batches {batches}")

    if expect_switch and val("switchEvents") < 1:
        errors += fail(
            path,
            "expected at least one planner switch event but "
            "switchEvents == 0")
    return errors


def check_trace(path, events):
    errors = 0
    if not isinstance(events, list):
        return fail(path, "traceEvents is not a list")
    for i, e in enumerate(events):
        for key in ("name", "ph", "pid", "ts"):
            if key not in e and not (key == "ts" and e.get("ph") == "M"):
                errors += fail(path, f"traceEvents[{i}] missing {key!r}")
        if e.get("ph") == "X" and e.get("dur", -1.0) < 0:
            errors += fail(path, f"traceEvents[{i}]: X event without dur >= 0")
    return errors


TUNE_HOST_FIELDS = {
    "gemv_row_chunk": True,        # True = must be positive
    "gemv_parallel_min_work": False,
    "batch_query_tile": True,
    "batch_row_tile": True,
    "topk_scan_cutoff": False,
}
TUNE_SIM_FIELDS = {
    "ranks_per_channel": True,
    "int4_macs": True,
    "inst_fifo_depth": True,
    "prefetch_tiles": True,
    "ddr_cycles": False,
}
KERNEL_TARGETS = ("scalar", "sse2", "avx2", "avx512")
MICROARCH_RE = re.compile(r"^[a-z0-9]+-f\d+m\d+-[a-z0-9]+$")


def check_tune_fields(path, label, block, fields):
    errors = 0
    for fname, positive in fields.items():
        if fname not in block:
            continue
        v = block[fname]
        if not isinstance(v, (int, float)) or isinstance(v, bool) \
                or v != int(v) or v < 0:
            errors += fail(
                path, f"{label}.{fname}: not a non-negative integer: {v!r}")
        elif positive and v == 0:
            errors += fail(path, f"{label}.{fname}: must be positive")
    for fname in block:
        if fname not in fields:
            errors += fail(path, f"{label}.{fname}: unknown field")
    return errors


def check_tune(path, doc):
    errors = 0
    if doc.get("schema_version") != 1:
        errors += fail(path,
                       f"schema_version is {doc.get('schema_version')!r}")
    if not doc.get("tool"):
        errors += fail(path, "missing tool field")
    configs = doc.get("configs")
    if not isinstance(configs, dict) or not configs:
        return errors + fail(path, "no tune configs present")
    for key, entry in configs.items():
        if not MICROARCH_RE.match(key):
            errors += fail(
                path, f"config key {key!r} is not a microarch key "
                      f"(<vendor>-f<family>m<model>-<target>)")
        if not isinstance(entry, dict):
            errors += fail(path, f"configs[{key!r}] is not an object")
            continue
        host = entry.get("host")
        if not isinstance(host, dict):
            errors += fail(path, f"configs[{key!r}] missing 'host' map")
        else:
            errors += check_tune_fields(path, f"{key}.host", host,
                                        TUNE_HOST_FIELDS)
        kernels = entry.get("kernels")
        if kernels is not None and kernels not in KERNEL_TARGETS:
            errors += fail(
                path, f"{key}.kernels: unknown target {kernels!r}")
        sim = entry.get("sim")
        if sim is not None:
            if not isinstance(sim, dict):
                errors += fail(path, f"{key}.sim is not an object")
            else:
                errors += check_tune_fields(path, f"{key}.sim", sim,
                                            TUNE_SIM_FIELDS)
        for section in entry:
            if section not in ("host", "kernels", "sim", "measurements"):
                errors += fail(path, f"{key}.{section}: unknown section")
    if not errors:
        print(f"{path}: OK (enmc.tune, {len(configs)} microarch entries)")
    return errors


def check_file(path, expect_switch=False):
    with open(path) as f:
        doc = json.load(f)

    errors = 0
    if doc.get("schema") == "enmc.tune":
        return check_tune(path, doc)
    if doc.get("schema") != "enmc.metrics":
        errors += fail(path, f"schema is {doc.get('schema')!r}")
    if doc.get("schema_version") != 1:
        errors += fail(path, f"schema_version is {doc.get('schema_version')!r}")
    if not doc.get("tool"):
        errors += fail(path, "missing tool field")

    groups = doc.get("groups")
    if not isinstance(groups, dict) or not groups:
        errors += fail(path, "no stat groups exported")
    else:
        for name, group in groups.items():
            errors += check_group(path, name, group)
        errors += check_cluster(path, groups)
        errors += check_cache(path, groups)
        errors += check_planner(path, groups, expect_switch)

    errors += check_trace(path, doc.get("traceEvents", []))

    if not errors:
        n_spans = sum(1 for e in doc.get("traceEvents", [])
                      if e.get("ph") in ("X", "i"))
        print(f"{path}: OK ({len(groups)} groups, {n_spans} trace events)")
    return errors


def main(argv):
    expect_switch = "--expect-switch" in argv[1:]
    paths = [a for a in argv[1:] if a != "--expect-switch"]
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    errors = 0
    for path in paths:
        errors += check_file(path, expect_switch)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
