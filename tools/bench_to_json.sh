#!/usr/bin/env bash
# Run the kernel microbenchmarks across every available dispatch target and
# archive the results as BENCH_kernels.json at the repo root.
#
# Usage: tools/bench_to_json.sh [build-dir] [output-file] [min-time]
#
# The kernels binary registers a <scalar>/<sse2>/<avx2> variant of each
# kernel benchmark at startup, so a single run records the full dispatch
# comparison (e.g. BM_GemvFp32<avx2>/65536 vs BM_GemvFp32<scalar>/65536).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_file="${2:-$repo_root/BENCH_kernels.json}"
min_time="${3:-0.1}"

bench_bin="$build_dir/bench/kernels"
if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not built (cmake --build $build_dir --target kernels)" >&2
    exit 1
fi

"$bench_bin" \
    --benchmark_format=json \
    --benchmark_min_time="$min_time" \
    --benchmark_filter='BM_Gemv|BM_SparseProjection|BM_Quantize|BM_TopK|BM_ThresholdFilter' \
    > "$out_file"

echo "wrote $out_file" >&2
