#!/usr/bin/env bash
# Archive bench results as JSON at the repo root.
#
# Kernel mode (default — unchanged CI interface):
#   tools/bench_to_json.sh [build-dir] [output-file] [min-time]
# runs the kernel microbenchmarks across every available dispatch target
# and writes google-benchmark JSON. The kernels binary registers a
# <scalar>/<sse2>/<avx2> variant of each kernel benchmark at startup, so a
# single run records the full dispatch comparison (e.g.
# BM_GemvFp32<avx2>/65536 vs BM_GemvFp32<scalar>/65536).
#
# Metrics mode:
#   tools/bench_to_json.sh --metrics <binary> [output-file] [args...]
# runs any bench/tool binary with --metrics-json= pointing at the output
# file, then validates the document (schema, counter invariants) with
# tools/check_metrics.py. Example:
#   tools/bench_to_json.sh --metrics build/bench/fig13_performance \
#       METRICS_fig13.json --backend=enmc
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${1:-}" = "--metrics" ]; then
    shift
    bench_bin="${1:?usage: bench_to_json.sh --metrics <binary> [out] [args...]}"
    shift
    out_file="${1:-$repo_root/METRICS_$(basename "$bench_bin").json}"
    [ "$#" -gt 0 ] && shift
    if [ ! -x "$bench_bin" ]; then
        echo "error: $bench_bin not built" >&2
        exit 1
    fi
    "$bench_bin" "--metrics-json=$out_file" "$@"
    python3 "$repo_root/tools/check_metrics.py" "$out_file"
    echo "wrote $out_file" >&2
    exit 0
fi

build_dir="${1:-$repo_root/build}"
out_file="${2:-$repo_root/BENCH_kernels.json}"
min_time="${3:-0.1}"

bench_bin="$build_dir/bench/kernels"
if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not built (cmake --build $build_dir --target kernels)" >&2
    exit 1
fi

"$bench_bin" \
    --benchmark_format=json \
    --benchmark_min_time="$min_time" \
    --benchmark_filter='BM_Gemv|BM_SparseProjection|BM_Quantize|BM_TopK|BM_MergeTopK|BM_ThresholdFilter' \
    > "$out_file"

# Debug-build numbers are meaningless as an archive; refuse them. The
# stock "library_build_type" field only describes the google-benchmark
# library (distro packages report "debug"), so the kernels binary
# records its own compile mode as "enmc_build_type".
if ! grep -q '"enmc_build_type": "release"' "$out_file"; then
    rm -f "$out_file"
    echo "error: $bench_bin is not a release build; rebuild with" \
         "-DCMAKE_BUILD_TYPE=Release before archiving" >&2
    exit 1
fi

echo "wrote $out_file" >&2
