#!/usr/bin/env python3
"""Self-test for check_metrics.py's planner invariants.

Builds minimal metrics documents in a temp directory and asserts that
the checker accepts the consistent one and rejects each broken variant
non-zero with a diagnostic on stderr:
  - plan kind counters that do not sum to plans;
  - per-backend dispatch.* counters that do not sum to plans;
  - deadDispatches > 0 (routed to an unavailable backend);
  - plans disagreeing with the batcher's dispatched-batch count;
  - --expect-switch against a document with switchEvents == 0, and
    against a document with no plan group at all;
  - a malformed group (missing its counters map) fails loudly rather
    than being skipped;
  - per-class ECC accounting: a {faultWeak,faultStrong}* class whose
    injected count does not close against corrected+detected+escaped;
  - ECC overhead accounting: redundancy reads or decode cycles charged
    while eccProtectedReads == 0;
  - candidate-cache accounting: lookup/hit/miss/validated/rejected/
    bypass tallies that do not close, a serve.loop hit/miss split that
    disagrees with its latency histograms or exceeds the cache's
    validated hits, and snapshot-slot publish/swap/epoch bookkeeping.

Run directly (python3 tools/test_check_metrics.py) or via ctest as
tool_check_metrics_selftest.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_metrics.py")


def counter(value):
    return {"value": value, "description": ""}


def good_doc():
    """A consistent --backend=auto metrics document: 12 batches, one
    plan per batch, kinds and per-backend dispatches closing exactly."""
    return {
        "schema": "enmc.metrics",
        "schema_version": 1,
        "tool": "test_check_metrics",
        "groups": {
            "plan": {
                "counters": {
                    "plans": counter(12),
                    "warmupPlans": counter(6),
                    "explorePlans": counter(1),
                    "steadyPlans": counter(5),
                    "switchEvents": counter(2),
                    "deadDispatches": counter(0),
                    "bins": counter(2),
                    "killEvents": counter(1),
                    "reviveEvents": counter(1),
                    "dispatch.cpu": counter(5),
                    "dispatch.enmc": counter(4),
                    "dispatch.tensordimm": counter(3),
                },
                "scalars": {},
                "histograms": {},
            },
            "serve.batcher": {
                "counters": {
                    "batches": counter(12),
                    "flushSize": counter(10),
                    "flushDeadline": counter(1),
                    "flushDrain": counter(1),
                },
                "scalars": {},
                "histograms": {},
            },
            "runtime.system": {
                "counters": {
                    "faultInjectedWords": counter(30),
                    "faultCorrected": counter(20),
                    "faultDetected": counter(6),
                    "faultEscaped": counter(4),
                    "faultNoneInjected": counter(0),
                    "faultNoneCorrected": counter(0),
                    "faultNoneDetected": counter(0),
                    "faultNoneEscaped": counter(0),
                    "faultWeakInjected": counter(10),
                    "faultWeakCorrected": counter(7),
                    "faultWeakDetected": counter(2),
                    "faultWeakEscaped": counter(1),
                    "faultStrongInjected": counter(20),
                    "faultStrongCorrected": counter(13),
                    "faultStrongDetected": counter(4),
                    "faultStrongEscaped": counter(3),
                },
                "scalars": {},
                "histograms": {},
            },
            "enmc.rank.dram": {
                "counters": {
                    "eccProtectedReads": counter(640),
                    "eccRedundancyReads": counter(80),
                    "eccDecodeCycles": counter(1280),
                },
                "scalars": {},
                "histograms": {},
            },
        },
        "traceEvents": [],
    }


def hist(total, bins):
    return {"lo": 0.0, "hi": 1e6, "bins": bins, "total": total,
            "underflow": 0, "overflow": 0, "description": ""}


def scalar(count, lo, hi):
    mean = (lo + hi) / 2 if count else 0
    return {"count": count, "sum": mean * count, "min": lo, "max": hi,
            "mean": mean, "description": ""}


def good_cache_doc():
    """A consistent candidate-cache + hot-swap metrics document: 40
    classified responses (30 hits, 10 misses), every tally closing."""
    return {
        "schema": "enmc.metrics",
        "schema_version": 1,
        "tool": "test_check_metrics",
        "groups": {
            "screening.cache": {
                "counters": {
                    "lookups": counter(40),
                    "hits": counter(30),
                    "misses": counter(10),
                    "validated": counter(28),
                    "rejected": counter(2),
                    "screenerBypass": counter(28),
                    "fullScreens": counter(12),
                    "insertions": counter(10),
                    "evictions": counter(3),
                },
                "scalars": {},
                "histograms": {},
            },
            "serve.loop": {
                "counters": {
                    "cacheHits": counter(28),
                    "cacheMisses": counter(12),
                    "measuredRequests": counter(44),
                },
                "scalars": {"servedEpoch": scalar(40, 1, 2)},
                "histograms": {
                    "latencyHitUs": hist(28, [28]),
                    "latencyMissUs": hist(12, [12]),
                },
            },
            "runtime.snapshot": {
                "counters": {
                    "publishes": counter(2),
                    "swaps": counter(1),
                    "retired": counter(1),
                    "collected": counter(1),
                },
                "scalars": {},
                "histograms": {},
            },
            "bench.serving.cache": {
                "counters": {},
                "scalars": {
                    "hitP50Us": scalar(1, 28, 28),
                    "missP50Us": scalar(1, 37, 37),
                },
                "histograms": {},
            },
        },
        "traceEvents": [],
    }


def run_checker(doc, *flags):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "metrics.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        return subprocess.run(
            [sys.executable, CHECKER, *flags, path],
            capture_output=True, text=True)


def expect_pass(label, doc, *flags):
    res = run_checker(doc, *flags)
    assert res.returncode == 0, (
        f"{label}: expected pass, got rc={res.returncode}\n{res.stderr}")
    print(f"  ok: {label}")


def expect_fail(label, doc, needle, *flags):
    res = run_checker(doc, *flags)
    assert res.returncode != 0, f"{label}: expected failure, got rc=0"
    assert needle in res.stderr, (
        f"{label}: diagnostic missing {needle!r}:\n{res.stderr}")
    print(f"  ok: {label}")


def main():
    expect_pass("consistent planner document", good_doc())
    expect_pass("consistent document with --expect-switch", good_doc(),
                "--expect-switch")

    doc = good_doc()
    doc["groups"]["plan"]["counters"]["steadyPlans"] = counter(4)
    expect_fail("plan kinds do not sum to plans", doc,
                "warmup+explore+steady")

    doc = good_doc()
    doc["groups"]["plan"]["counters"]["dispatch.cpu"] = counter(6)
    expect_fail("dispatch.* counters do not sum to plans", doc,
                "per-backend dispatch sum")

    doc = good_doc()
    doc["groups"]["plan"]["counters"]["deadDispatches"] = counter(1)
    expect_fail("dispatch to an unavailable backend", doc,
                "unavailable backend")

    doc = good_doc()
    doc["groups"]["serve.batcher"]["counters"]["batches"] = counter(13)
    doc["groups"]["serve.batcher"]["counters"]["flushSize"] = counter(11)
    expect_fail("plans disagree with dispatched batches", doc,
                "dispatched batches")

    doc = good_doc()
    doc["groups"]["plan"]["counters"]["switchEvents"] = counter(0)
    expect_pass("no switch without --expect-switch", doc)
    expect_fail("no switch with --expect-switch", doc,
                "switchEvents == 0", "--expect-switch")

    doc = good_doc()
    del doc["groups"]["plan"]
    expect_pass("plan group absent is fine by default", doc)
    expect_fail("--expect-switch demands a plan group", doc,
                "no 'plan' group", "--expect-switch")

    doc = good_doc()
    del doc["groups"]["plan"]["counters"]
    expect_fail("malformed group fails loudly", doc,
                "missing map 'counters'")

    doc = good_doc()
    doc["groups"]["runtime.system"]["counters"]["faultWeakEscaped"] = \
        counter(2)
    expect_fail("weak-class ECC accounting does not close", doc,
                "faultWeakInjected")

    doc = good_doc()
    doc["groups"]["runtime.system"]["counters"]["faultStrongInjected"] = \
        counter(21)
    expect_fail("strong-class ECC accounting does not close", doc,
                "faultStrongInjected")

    doc = good_doc()
    doc["groups"]["enmc.rank.dram"]["counters"]["eccProtectedReads"] = \
        counter(0)
    expect_fail("redundancy charged with no protected reads", doc,
                "no ECC-protected reads")

    doc = good_doc()
    doc["groups"]["enmc.rank.dram"]["counters"]["eccRedundancyReads"] = \
        counter(0)
    doc["groups"]["enmc.rank.dram"]["counters"]["eccDecodeCycles"] = \
        counter(0)
    doc["groups"]["enmc.rank.dram"]["counters"]["eccProtectedReads"] = \
        counter(0)
    expect_pass("ECC off charges nothing and passes", doc)

    expect_pass("consistent cache + snapshot document", good_cache_doc())

    doc = good_cache_doc()
    doc["groups"]["screening.cache"]["counters"]["hits"] = counter(29)
    expect_fail("cache lookups do not close against hits+misses", doc,
                "hits+misses")

    doc = good_cache_doc()
    doc["groups"]["screening.cache"]["counters"]["rejected"] = counter(1)
    expect_fail("cache hits do not close against validated+rejected", doc,
                "validated+rejected")

    doc = good_cache_doc()
    doc["groups"]["screening.cache"]["counters"]["screenerBypass"] = \
        counter(27)
    expect_fail("cache lookups do not close against bypass+fullScreens",
                doc, "bypass+fullScreens")

    doc = good_cache_doc()
    doc["groups"]["screening.cache"]["counters"]["evictions"] = counter(11)
    expect_fail("cache evictions exceed insertions", doc,
                "evictions exceed")

    doc = good_cache_doc()
    doc["groups"]["serve.loop"]["histograms"]["latencyHitUs"] = \
        hist(27, [27])
    expect_fail("hit-latency histogram disagrees with cacheHits", doc,
                "latencyHitUs")

    doc = good_cache_doc()
    doc["groups"]["serve.loop"]["counters"]["measuredRequests"] = \
        counter(39)
    expect_fail("classified responses exceed measuredRequests", doc,
                "measuredRequests")

    doc = good_cache_doc()
    doc["groups"]["serve.loop"]["scalars"]["servedEpoch"] = scalar(39, 1, 2)
    expect_fail("servedEpoch sample count disagrees with hit/miss split",
                doc, "servedEpoch sampled")

    doc = good_cache_doc()
    doc["groups"]["serve.loop"]["counters"]["cacheHits"] = counter(29)
    doc["groups"]["serve.loop"]["histograms"]["latencyHitUs"] = \
        hist(29, [29])
    doc["groups"]["serve.loop"]["scalars"]["servedEpoch"] = scalar(41, 1, 2)
    expect_fail("served more cache hits than the cache validated", doc,
                "validated only")

    doc = good_cache_doc()
    doc["groups"]["bench.serving.cache"]["scalars"]["hitP50Us"] = \
        scalar(1, 40, 40)
    expect_fail("cache-hit p50 exceeds miss p50", doc,
                "cache latency win missing")

    doc = good_cache_doc()
    doc["groups"]["runtime.snapshot"]["counters"]["swaps"] = counter(3)
    expect_fail("snapshot swaps exceed publishes", doc, "swaps exceed")

    doc = good_cache_doc()
    doc["groups"]["runtime.snapshot"]["counters"]["collected"] = counter(2)
    expect_fail("snapshot collections exceed retirements", doc,
                "collected exceed")

    doc = good_cache_doc()
    doc["groups"]["serve.loop"]["scalars"]["servedEpoch"] = scalar(40, 1, 3)
    expect_fail("served epoch beyond the published-epoch count", doc,
                "published epochs")

    doc = good_cache_doc()
    del doc["groups"]["screening.cache"]
    del doc["groups"]["runtime.snapshot"]
    doc["groups"]["serve.loop"]["counters"]["cacheHits"] = counter(0)
    doc["groups"]["serve.loop"]["counters"]["cacheMisses"] = counter(0)
    doc["groups"]["serve.loop"]["histograms"]["latencyHitUs"] = hist(0, [0])
    doc["groups"]["serve.loop"]["histograms"]["latencyMissUs"] = \
        hist(0, [0])
    doc["groups"]["serve.loop"]["scalars"]["servedEpoch"] = scalar(0, 0, 0)
    expect_pass("cache off (timing-only serving) passes", doc)

    print("tools/test_check_metrics.py: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
