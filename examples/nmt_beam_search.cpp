/**
 * @file
 * Neural machine translation scenario (the paper's GNMT-E32K workload):
 * beam-search decoding where every step's next-word distribution comes
 * from extreme classification over the target vocabulary.
 *
 * The example decodes the same synthetic "sentences" twice — once with
 * exact full classification, once with approximate screening — and
 * reports how often the translations match, plus the per-step cost
 * reduction. This is the paper's motivating use case: beam search needs
 * only the top-K words to be accurate.
 */

#include <cmath>
#include <cstring>
#include <cstdio>

#include "nn/beam.h"
#include "screening/metrics.h"
#include "screening/pipeline.h"
#include "screening/trainer.h"
#include "tensor/ops.h"
#include "tensor/topk.h"
#include "workloads/synthetic.h"

using namespace enmc;

namespace {

/**
 * A synthetic decoder. Real decoder states produce *sharp* next-word
 * distributions (one or a few words far above the tail) — the property
 * both beam search and screening rely on. The transition therefore maps
 * (state, emitted token) deterministically to a fresh hidden vector with
 * the model's calibrated top-word structure: the same token prefix always
 * yields the same state, so the exact and screened decoders are
 * comparable step by step, exactly as in teacher-forced evaluation.
 */
struct SyntheticDecoder
{
    const workloads::SyntheticModel &model;
    tensor::Vector h0;

    SyntheticDecoder(const workloads::SyntheticModel &m, Rng &rng)
        : model(m), h0(m.sampleHidden(rng))
    {
    }

    static uint64_t
    mixState(const tensor::Vector &h, uint32_t token)
    {
        uint64_t seed = 0x9e3779b97f4a7c15ull + token;
        for (size_t i = 0; i < 4 && i < h.size(); ++i) {
            uint32_t bits;
            std::memcpy(&bits, &h[i], sizeof(bits));
            seed = (seed ^ bits) * 0xbf58476d1ce4e5b9ull;
        }
        return seed;
    }

    tensor::Vector
    advance(const tensor::Vector &h, uint32_t token) const
    {
        Rng step_rng(mixState(h, token));
        return model.sampleHidden(step_rng);
    }
};

tensor::Vector
toLogProbs(tensor::Vector logits)
{
    const double lse = tensor::logSumExp(logits);
    for (auto &v : logits)
        v = static_cast<float>(v - lse);
    return logits;
}

} // namespace

int
main()
{
    // Target vocabulary ~ GNMT-E32K at functional scale.
    workloads::SyntheticConfig cfg;
    cfg.categories = 8192;
    cfg.hidden = 96;
    workloads::SyntheticModel model(cfg);
    Rng rng = model.makeRng(11);

    // Train the screener once, offline.
    screening::ScreenerConfig scfg;
    scfg.categories = cfg.categories;
    scfg.hidden = cfg.hidden;
    scfg.selection = screening::SelectionMode::TopM;
    scfg.top_m = 256;
    screening::Screener screener(scfg, rng);
    SyntheticDecoder decoder(model, rng);

    // Distill the screener on the decode-state distribution (Algorithm 1).
    screening::Trainer trainer(model.classifier(), screener,
                               screening::TrainerConfig{});
    trainer.train(model.sampleHiddenBatch(rng, 256), {});
    screener.freezeQuantized();
    screening::Pipeline pipeline(model.classifier(), screener);

    // Exact and screened scoring functions for the beam search.
    uint64_t full_steps = 0, as_steps = 0;
    screening::Cost full_cost{}, as_cost{};
    nn::DecoderInterface exact;
    exact.initial_state = [&] { return decoder.h0; };
    exact.advance = [&](const tensor::Vector &h, uint32_t t) {
        return decoder.advance(h, t);
    };
    exact.log_probs = [&](const tensor::Vector &h) {
        ++full_steps;
        const auto r = pipeline.inferFull(h);
        full_cost += r.cost;
        return toLogProbs(r.logits);
    };

    nn::DecoderInterface screened = exact;
    screened.log_probs = [&](const tensor::Vector &h) {
        ++as_steps;
        auto r = pipeline.infer(h);
        as_cost += r.cost;
        // Beam expansion chooses among the *accurately computed*
        // candidates; the approximate tail only feeds the softmax
        // normalizer (the paper's top-K usage: only top probabilities
        // need to be accurate).
        tensor::Vector masked(r.logits.size(), -1e30f);
        for (uint32_t c : r.candidates)
            masked[c] = r.logits[c];
        const double lse = tensor::logSumExp(r.logits);
        for (auto &v : masked)
            if (v > -1e29f)
                v = static_cast<float>(v - lse);
        return masked;
    };

    nn::BeamConfig bc;
    bc.beam_width = 4;
    bc.max_steps = 12;
    bc.eos_token = 0;
    bc.length_penalty = 0.6;

    // Decode with the exact model, then replay the winning state sequence
    // and ask the screened classifier for its choice at every step —
    // teacher-forced next-token agreement, the step-level quantity BLEU
    // is monotone in. (Free-running decode comparison is uninformative in
    // a synthetic decoder: one early tie flips the entire chaotic suffix.)
    int sentences = 8;
    uint64_t steps = 0, top1_match = 0;
    double beam_recall = 0.0;
    for (int s = 0; s < sentences; ++s) {
        decoder.h0 = model.sampleHidden(rng);
        const auto ref = nn::beamSearch(exact, bc);
        tensor::Vector state = decoder.h0;
        for (uint32_t tok : ref.front().tokens) {
            const auto exact_lp = exact.log_probs(state);
            const auto screened_lp = screened.log_probs(state);
            const auto exact_top = tensor::topkIndices(exact_lp, 4);
            const auto screened_top = tensor::topkIndices(screened_lp, 4);
            top1_match += (exact_top[0] == screened_top[0]);
            beam_recall += tensor::recall(screened_top, exact_top);
            ++steps;
            if (tok == bc.eos_token)
                break;
            state = decoder.advance(state, tok);
        }
        std::printf("sentence %d: %zu tokens decoded\n", s,
                    ref.front().tokens.size());
    }

    // Per-step cost comparison (the two paths executed different step
    // counts, so normalize before comparing).
    screening::Cost full_per_step = full_cost;
    screening::Cost as_per_step = as_cost;
    full_per_step.flops /= std::max<uint64_t>(full_steps, 1);
    full_per_step.bytes_read /= std::max<uint64_t>(full_steps, 1);
    as_per_step.flops /= std::max<uint64_t>(as_steps, 1);
    as_per_step.bytes_read /= std::max<uint64_t>(as_steps, 1);
    const double speedup =
        screening::costSpeedup(full_per_step, as_per_step);
    std::printf("\nteacher-forced agreement over %llu decode steps:\n",
                static_cast<unsigned long long>(steps));
    std::printf("  next-token (top-1) match: %.1f%%\n",
                100.0 * top1_match / steps);
    std::printf("  beam-set (top-4) recall:  %.1f%%\n",
                100.0 * beam_recall / steps);
    std::printf("per-step classification cost reduced %.1fx "
                "(bytes/step: %.2f MB -> %.2f MB)\n",
                speedup, full_per_step.bytes_read / 1e6,
                as_per_step.bytes_read / 1e6);
    std::printf("\n(The paper's Fig. 11(a): 11.8x speedup on GNMT with no "
                "BLEU loss.)\n");
    return 0;
}
