/**
 * @file
 * Architecture tour: compile a classification call into the ENMC
 * instruction stream, show the PRECHARGE-tunneled binary encoding
 * (paper Fig. 8), execute it cycle by cycle on one rank, and dump the
 * DRAM controller statistics.
 */

#include <cstdio>
#include <sstream>

#include "enmc/rank.h"
#include "runtime/compiler.h"
#include "runtime/system.h"

using namespace enmc;
using namespace enmc::arch;

int
main()
{
    // One rank's slice of Transformer-W268K.
    runtime::EnmcSystem sys{runtime::SystemConfig{}};
    runtime::JobSpec spec;
    spec.categories = 267744;
    spec.hidden = 512;
    spec.reduced = 128;
    spec.batch = 1;
    spec.candidates = 34000;
    const RankTask task = sys.makeRankTask(spec);

    EnmcConfig cfg;
    const runtime::CompiledJob job = runtime::compileClassification(task, cfg);
    std::printf("compiled: %zu instructions, %llu tiles of %llu rows\n\n",
                job.program.size(),
                static_cast<unsigned long long>(job.tiles),
                static_cast<unsigned long long>(job.tile_rows));

    std::printf("prologue + first tile + epilogue:\n");
    for (size_t i = 0; i < 15 && i < job.program.size(); ++i) {
        const EncodedInstruction enc = encode(job.program[i]);
        std::printf("  %2zu: CA=0x%04x%s  %s\n", i, enc.ca,
                    enc.has_payload ? " +DQ" : "    ",
                    job.program[i].toString().c_str());
    }
    std::printf("  ...\n");
    for (size_t i = job.program.size() - 3; i < job.program.size(); ++i)
        std::printf("  %2zu:            %s\n", i,
                    job.program[i].toString().c_str());

    // Execute on one rank.
    EnmcRank rank(cfg, dram::Organization::paperTable3().singleRankView(),
                  dram::Timing::ddr4_2400());
    const RankResult r = rank.run(job.program, task);
    std::printf("\nexecution: %llu DDR cycles (%.1f us)\n",
                static_cast<unsigned long long>(r.cycles),
                cyclesToSeconds(r.cycles, 1200e6) * 1e6);
    std::printf("  host instructions dispatched: %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  generated for the Executor:   %llu\n",
                static_cast<unsigned long long>(r.generated_instructions));
    std::printf("  screening traffic: %.2f MB, candidate traffic: %.2f MB\n",
                r.screen_bytes / 1e6, r.exec_bytes / 1e6);
    std::printf("  Screener MAC busy: %llu cycles, Executor MAC busy: %llu\n",
                static_cast<unsigned long long>(r.screener_busy),
                static_cast<unsigned long long>(r.executor_busy));

    std::printf("\nper-rank DRAM controller statistics:\n");
    std::ostringstream oss;
    rank.dramController().stats().dump(oss);
    std::printf("%s", oss.str().c_str());
    return 0;
}
