/**
 * @file
 * Language-model inference "server": a stream of single-token
 * classification requests (batch 1, the paper's low-latency case) served
 * by the ENMC system, reporting the latency distribution (p50/p95/p99)
 * and throughput, with the CPU-full-classification latency alongside.
 *
 * Request latency varies with the candidate count the FILTER selects —
 * hot prompts (sharp logit distributions) pass fewer categories than
 * cold ones — so the distribution, not just the mean, is the serving
 * metric that matters.
 */

#include <algorithm>
#include <cstdio>

#include "common/stats.h"
#include "nmp/cpu.h"
#include "runtime/api.h"
#include "runtime/system.h"
#include "workloads/registry.h"

using namespace enmc;

int
main()
{
    const workloads::Workload wl =
        workloads::findWorkload("Transformer-W268K");
    std::printf("serving %s: l=%llu categories, d=%llu\n", wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(wl.hidden));

    // Functional-scale model for candidate-count realism; per-request
    // timing is then simulated at full scale with the measured counts.
    workloads::SyntheticModel model(wl.functionalConfig());
    Rng rng = model.makeRng(5);
    runtime::ClassifierOptions options;
    options.candidates = 128;
    runtime::EnmcClassifier clf(model.classifier(), options);
    clf.calibrate(model.sampleHiddenBatch(rng, 256),
                  model.sampleHiddenBatch(rng, 64));

    // Serve a request stream: measure each request's candidate count at
    // functional scale, then time the equivalent full-scale job.
    runtime::EnmcSystem system{runtime::SystemConfig{}};
    const size_t requests = 48;
    std::vector<double> latencies_us;
    Histogram cand_hist(0, 1024, 16);

    for (size_t i = 0; i < requests; ++i) {
        const auto h = model.sampleHiddenBatch(rng, 1);
        const auto out = clf.forward(h, 1);
        const double cand_frac =
            static_cast<double>(out[0].candidates.size()) /
            model.classifier().categories();
        cand_hist.sample(static_cast<double>(out[0].candidates.size()));

        runtime::JobSpec job;
        job.categories = wl.categories;
        job.hidden = wl.hidden;
        job.reduced = wl.hidden / 4;
        job.batch = 1;
        job.candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(cand_frac * wl.categories));
        const auto t = system.runTiming(job);
        latencies_us.push_back(t.seconds * 1e6);
    }

    std::sort(latencies_us.begin(), latencies_us.end());
    auto pct = [&](double p) {
        return latencies_us[static_cast<size_t>(p * (requests - 1))];
    };
    double sum = 0;
    for (double v : latencies_us)
        sum += v;

    std::printf("\nENMC classification latency over %zu requests:\n",
                requests);
    std::printf("  mean %.1f us | p50 %.1f | p95 %.1f | p99 %.1f | max %.1f\n",
                sum / requests, pct(0.50), pct(0.95), pct(0.99),
                latencies_us.back());
    std::printf("  throughput: %.0f classifications/s (single stream)\n",
                1e6 / (sum / requests));

    nmp::CpuConfig cpu;
    const double cpu_us =
        1e6 * nmp::cpuFullClassificationTime(cpu, wl.categories, wl.hidden,
                                             1);
    std::printf("  CPU full classification: %.0f us -> ENMC %.0fx faster "
                "at p50\n",
                cpu_us, cpu_us / pct(0.50));

    std::printf("\ncandidate-count distribution (per request, functional "
                "scale l=%zu):\n",
                model.classifier().categories());
    for (size_t b = 0; b < cand_hist.numBins(); ++b) {
        if (cand_hist.bin(b) == 0)
            continue;
        std::printf("  [%4.0f, %4.0f): %llu\n", cand_hist.binLo(b),
                    cand_hist.binHi(b),
                    static_cast<unsigned long long>(cand_hist.bin(b)));
    }
    return 0;
}
