/**
 * @file
 * Language-model inference "server": a stream of single-token
 * classification requests (batch 1, the paper's low-latency case) served
 * through the execution-backend registry, reporting the latency
 * distribution (p50/p95/p99) and throughput per backend in one run.
 *
 * Request latency varies with the candidate count the FILTER selects —
 * hot prompts (sharp logit distributions) pass fewer categories than
 * cold ones — so the distribution, not just the mean, is the serving
 * metric that matters. Percentiles use the shared nearest-rank helper
 * (obs::Percentiles); the previous hand-rolled `p * (requests - 1)`
 * index truncated toward lower samples (p99 of 48 requests picked the
 * 47th instead of the 48th).
 *
 * Usage: lm_inference_server [backend ...] [--metrics-json=FILE]
 *   e.g. `lm_inference_server enmc tensordimm cpu`
 *   (no backend arguments = enmc + tensordimm + cpu + cpu-full)
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/percentiles.h"
#include "obs/registry.h"
#include "runtime/api.h"
#include "runtime/backend.h"
#include "runtime/system.h"
#include "workloads/registry.h"

using namespace enmc;

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "lm_inference_server");

    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--", 0) == 0)
            continue; // observability flags, not backend names
        names.push_back(argv[i]);
    }
    if (names.empty())
        names = {"enmc", "tensordimm", "cpu", "cpu-full"};

    std::vector<std::unique_ptr<runtime::Backend>> backends;
    for (const auto &n : names)
        backends.push_back(runtime::createBackend(n)); // fatal if unknown

    const workloads::Workload wl =
        workloads::findWorkload("Transformer-W268K");
    std::printf("serving %s: l=%llu categories, d=%llu\n", wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(wl.hidden));

    // The server's own observable state: request latencies and FILTER
    // candidate counts, exported with every component group.
    StatGroup server_stats("example.lmServer");
    obs::StatRegistration server_reg(server_stats);
    Counter &served = server_stats.addCounter("requests", "requests served");
    Histogram &cand_hist = server_stats.addHistogram(
        "candidates", "FILTER candidate count per request (functional "
                      "scale)", 0, 1024, 16);
    Histogram &lat_hist = server_stats.addHistogram(
        "latencyUs", "enmc request latency in us", 0, 400, 40);

    // Functional-scale model for candidate-count realism; per-request
    // timing is then simulated at full scale with the measured counts.
    workloads::SyntheticModel model(wl.functionalConfig());
    Rng rng = model.makeRng(5);
    runtime::ClassifierOptions options;
    options.candidates = 128;
    runtime::EnmcClassifier clf(model.classifier(), options);
    clf.calibrate(model.sampleHiddenBatch(rng, 256),
                  model.sampleHiddenBatch(rng, 64));

    // Measure each request's candidate count once at functional scale;
    // every backend then serves the same request stream.
    const size_t requests = 48;
    std::vector<runtime::JobSpec> jobs;
    for (size_t i = 0; i < requests; ++i) {
        const auto h = model.sampleHiddenBatch(rng, 1);
        const auto out = clf.forward(h, 1);
        const double cand_frac =
            static_cast<double>(out[0].candidates.size()) /
            model.classifier().categories();
        cand_hist.sample(static_cast<double>(out[0].candidates.size()));

        runtime::JobSpec job;
        job.categories = wl.categories;
        job.hidden = wl.hidden;
        job.reduced = wl.hidden / 4;
        job.batch = 1;
        job.candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(cand_frac * wl.categories));
        jobs.push_back(job);
    }

    std::printf("\nlatency over %zu requests, per backend (us):\n",
                requests);
    std::printf("  %-18s %9s %9s %9s %9s %9s %12s\n", "backend", "mean",
                "p50", "p95", "p99", "max", "req/s");

    double enmc_p50 = 0.0, cpu_full_p50 = 0.0;
    for (const auto &backend : backends) {
        std::vector<double> lat_us;
        for (const auto &job : jobs)
            lat_us.push_back(backend->runJob(job).seconds * 1e6);
        served += lat_us.size();
        if (backend->name() == "enmc")
            for (double v : lat_us)
                lat_hist.sample(v);
        const obs::Percentiles pct(std::move(lat_us));
        std::printf("  %-18s %9.1f %9.1f %9.1f %9.1f %9.1f %12.0f\n",
                    backend->name().c_str(), pct.mean(), pct.at(0.50),
                    pct.at(0.95), pct.at(0.99), pct.max(),
                    1e6 / pct.mean());
        if (backend->name() == "enmc")
            enmc_p50 = pct.at(0.50);
        if (backend->name() == "cpu-full")
            cpu_full_p50 = pct.at(0.50);
    }
    if (enmc_p50 > 0.0 && cpu_full_p50 > 0.0)
        std::printf("\n  ENMC is %.0fx faster than CPU full "
                    "classification at p50\n",
                    cpu_full_p50 / enmc_p50);

    std::printf("\ncandidate-count distribution (per request, functional "
                "scale l=%zu):\n",
                model.classifier().categories());
    for (size_t b = 0; b < cand_hist.numBins(); ++b) {
        if (cand_hist.bin(b) == 0)
            continue;
        std::printf("  [%4.0f, %4.0f): %llu\n", cand_hist.binLo(b),
                    cand_hist.binHi(b),
                    static_cast<unsigned long long>(cand_hist.bin(b)));
    }

    obs::writeMetrics(metrics);
    return 0;
}
