/**
 * @file
 * Language-model inference "server": a stream of single-token
 * classification requests (batch 1, the paper's low-latency case),
 * driven through the serve layer (src/serve/) in deterministic replay
 * mode and reported per backend.
 *
 * Request latency varies with the candidate count the FILTER selects —
 * hot prompts (sharp logit distributions) pass fewer categories than
 * cold ones — so the distribution, not just the mean, is the serving
 * metric that matters. The serve loop owns what this example used to
 * hand-roll: the leading requests are flagged warm-up and excluded from
 * every percentile (cold-start allocations and cache misses were
 * previously timed together with steady-state requests, biasing the
 * tail), and each latency decomposes into time-in-queue plus
 * time-in-backend.
 *
 * Usage: lm_inference_server [backend ...] [--metrics-json=FILE]
 *   e.g. `lm_inference_server enmc tensordimm cpu`
 *   (no backend arguments = enmc + tensordimm + cpu + cpu-full)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/percentiles.h"
#include "obs/registry.h"
#include "runtime/api.h"
#include "runtime/backend.h"
#include "serve/loop.h"
#include "workloads/registry.h"

using namespace enmc;

int
main(int argc, char **argv)
{
    const obs::MetricsOptions metrics =
        obs::initMetrics(argc, argv, "lm_inference_server");

    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--", 0) == 0)
            continue; // observability flags, not backend names
        names.push_back(argv[i]);
    }
    if (names.empty())
        names = {"enmc", "tensordimm", "cpu", "cpu-full"};
    for (const auto &n : names)
        if (!runtime::BackendRegistry::instance().contains(n))
            ENMC_FATAL("unknown backend '", n, "'");

    const workloads::Workload wl =
        workloads::findWorkload("Transformer-W268K");
    std::printf("serving %s: l=%llu categories, d=%llu\n", wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(wl.hidden));

    // The server's own observable state: FILTER candidate counts at
    // functional scale, exported with every component group.
    StatGroup server_stats("example.lmServer");
    obs::StatRegistration server_reg(server_stats);
    Counter &served = server_stats.addCounter("requests", "requests served");
    Histogram &cand_hist = server_stats.addHistogram(
        "candidates", "FILTER candidate count per request (functional "
                      "scale)", 0, 1024, 16);

    // Functional-scale model for candidate-count realism; per-request
    // timing is then simulated at full scale with the measured counts.
    workloads::SyntheticModel model(wl.functionalConfig());
    Rng rng = model.makeRng(5);
    runtime::ClassifierOptions options;
    options.candidates = 128;
    runtime::EnmcClassifier clf(model.classifier(),
                                runtime::classifierOptionsFromEnv(options));
    clf.calibrate(model.sampleHiddenBatch(rng, 256),
                  model.sampleHiddenBatch(rng, 64));

    // Measure each request's candidate count once at functional scale
    // and build one arrival trace every backend replays: single-token
    // requests arriving far apart (the low-latency regime — no
    // co-travellers to batch with), the first few flagged warm-up.
    const size_t warmup = 4;
    const size_t measured = 48;
    serve::ArrivalTrace trace;
    for (size_t i = 0; i < warmup + measured; ++i) {
        const auto h = model.sampleHiddenBatch(rng, 1);
        const auto out = clf.forward(h, 1);
        const double cand_frac =
            static_cast<double>(out[0].candidates.size()) /
            model.classifier().categories();
        cand_hist.sample(static_cast<double>(out[0].candidates.size()));

        serve::Request r;
        r.id = i;
        r.arrival_us = static_cast<double>(i) * 10e3; // idle server
        r.candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(cand_frac * wl.categories));
        trace.requests.push_back(r);
    }

    runtime::JobSpec job;
    job.categories = wl.categories;
    job.hidden = wl.hidden;
    job.reduced = wl.hidden / 4;
    job.sigmoid = wl.normalization == nn::Normalization::Sigmoid;

    serve::ServeConfig cfg;
    cfg.max_batch = 1; // single-token low-latency serving
    cfg.max_delay_us = 0.0;
    cfg.warmup_requests = warmup;
    cfg.compute_logits = false; // logits were computed at functional scale

    std::printf("\nlatency over %zu requests (+%zu warm-up, excluded), "
                "per backend (us, incl. %.0f us offload handoff):\n",
                measured, warmup, cfg.handoff_us);
    std::printf("  %-18s %9s %9s %9s %9s %9s %12s\n", "backend", "mean",
                "p50", "p95", "p99", "max", "req/s");

    double enmc_p50 = 0.0, cpu_full_p50 = 0.0;
    for (const auto &name : names) {
        serve::ServeConfig backend_cfg = cfg;
        backend_cfg.backend = name;
        serve::ServeLoop loop(backend_cfg, job);
        const serve::ServeReport report = loop.replay(trace);
        served += report.measuredCount();

        const obs::Percentiles pct = report.measuredLatency();
        std::printf("  %-18s %9.1f %9.1f %9.1f %9.1f %9.1f %12.0f\n",
                    name.c_str(), pct.mean(), pct.at(0.50), pct.at(0.95),
                    pct.at(0.99), pct.max(), 1e6 / pct.mean());
        if (name == "enmc")
            enmc_p50 = pct.at(0.50);
        if (name == "cpu-full")
            cpu_full_p50 = pct.at(0.50);
    }
    if (enmc_p50 > 0.0 && cpu_full_p50 > 0.0)
        std::printf("\n  ENMC is %.0fx faster than CPU full "
                    "classification at p50\n",
                    cpu_full_p50 / enmc_p50);

    std::printf("\ncandidate-count distribution (per request, functional "
                "scale l=%zu):\n",
                model.classifier().categories());
    for (size_t b = 0; b < cand_hist.numBins(); ++b) {
        if (cand_hist.bin(b) == 0)
            continue;
        std::printf("  [%4.0f, %4.0f): %llu\n", cand_hist.binLo(b),
                    cand_hist.binHi(b),
                    static_cast<unsigned long long>(cand_hist.bin(b)));
    }

    obs::writeMetrics(metrics);
    return 0;
}
