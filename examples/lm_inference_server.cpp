/**
 * @file
 * Language-model inference "server": a stream of single-token
 * classification requests (batch 1, the paper's low-latency case) served
 * through the execution-backend registry, reporting the latency
 * distribution (p50/p95/p99) and throughput per backend in one run.
 *
 * Request latency varies with the candidate count the FILTER selects —
 * hot prompts (sharp logit distributions) pass fewer categories than
 * cold ones — so the distribution, not just the mean, is the serving
 * metric that matters.
 *
 * Usage: lm_inference_server [backend ...]
 *   e.g. `lm_inference_server enmc tensordimm cpu`
 *   (no arguments = enmc + tensordimm + cpu + cpu-full)
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "runtime/api.h"
#include "runtime/backend.h"
#include "runtime/system.h"
#include "workloads/registry.h"

using namespace enmc;

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"enmc", "tensordimm", "cpu", "cpu-full"};

    std::vector<std::unique_ptr<runtime::Backend>> backends;
    for (const auto &n : names)
        backends.push_back(runtime::createBackend(n)); // fatal if unknown

    const workloads::Workload wl =
        workloads::findWorkload("Transformer-W268K");
    std::printf("serving %s: l=%llu categories, d=%llu\n", wl.abbr.c_str(),
                static_cast<unsigned long long>(wl.categories),
                static_cast<unsigned long long>(wl.hidden));

    // Functional-scale model for candidate-count realism; per-request
    // timing is then simulated at full scale with the measured counts.
    workloads::SyntheticModel model(wl.functionalConfig());
    Rng rng = model.makeRng(5);
    runtime::ClassifierOptions options;
    options.candidates = 128;
    runtime::EnmcClassifier clf(model.classifier(), options);
    clf.calibrate(model.sampleHiddenBatch(rng, 256),
                  model.sampleHiddenBatch(rng, 64));

    // Measure each request's candidate count once at functional scale;
    // every backend then serves the same request stream.
    const size_t requests = 48;
    std::vector<runtime::JobSpec> jobs;
    Histogram cand_hist(0, 1024, 16);
    for (size_t i = 0; i < requests; ++i) {
        const auto h = model.sampleHiddenBatch(rng, 1);
        const auto out = clf.forward(h, 1);
        const double cand_frac =
            static_cast<double>(out[0].candidates.size()) /
            model.classifier().categories();
        cand_hist.sample(static_cast<double>(out[0].candidates.size()));

        runtime::JobSpec job;
        job.categories = wl.categories;
        job.hidden = wl.hidden;
        job.reduced = wl.hidden / 4;
        job.batch = 1;
        job.candidates = std::max<uint64_t>(
            1, static_cast<uint64_t>(cand_frac * wl.categories));
        jobs.push_back(job);
    }

    std::printf("\nlatency over %zu requests, per backend (us):\n",
                requests);
    std::printf("  %-18s %9s %9s %9s %9s %9s %12s\n", "backend", "mean",
                "p50", "p95", "p99", "max", "req/s");

    double enmc_p50 = 0.0, cpu_full_p50 = 0.0;
    for (const auto &backend : backends) {
        std::vector<double> lat_us;
        for (const auto &job : jobs)
            lat_us.push_back(backend->runJob(job).seconds * 1e6);
        std::sort(lat_us.begin(), lat_us.end());
        auto pct = [&](double p) {
            return lat_us[static_cast<size_t>(p * (requests - 1))];
        };
        double sum = 0;
        for (double v : lat_us)
            sum += v;
        std::printf("  %-18s %9.1f %9.1f %9.1f %9.1f %9.1f %12.0f\n",
                    backend->name().c_str(), sum / requests, pct(0.50),
                    pct(0.95), pct(0.99), lat_us.back(),
                    1e6 / (sum / requests));
        if (backend->name() == "enmc")
            enmc_p50 = pct(0.50);
        if (backend->name() == "cpu-full")
            cpu_full_p50 = pct(0.50);
    }
    if (enmc_p50 > 0.0 && cpu_full_p50 > 0.0)
        std::printf("\n  ENMC is %.0fx faster than CPU full "
                    "classification at p50\n",
                    cpu_full_p50 / enmc_p50);

    std::printf("\ncandidate-count distribution (per request, functional "
                "scale l=%zu):\n",
                model.classifier().categories());
    for (size_t b = 0; b < cand_hist.numBins(); ++b) {
        if (cand_hist.bin(b) == 0)
            continue;
        std::printf("  [%4.0f, %4.0f): %llu\n", cand_hist.binLo(b),
                    cand_hist.binHi(b),
                    static_cast<unsigned long long>(cand_hist.bin(b)));
    }
    return 0;
}
