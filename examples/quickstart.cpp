/**
 * @file
 * Quickstart: offload an extreme classifier to ENMC in four steps.
 *
 *  1. Bring a trained classifier (here: a synthetic 8K-category model).
 *  2. Wrap it in an EnmcClassifier (allocates the screener).
 *  3. calibrate(): distills the screener (Algorithm 1) and tunes the
 *     hardware FILTER threshold.
 *  4. forward(): runs candidates-only classification on the simulated
 *     ENMC ranks and returns full probability vectors + top-k.
 */

#include <cstdio>

#include "runtime/api.h"
#include "workloads/synthetic.h"

using namespace enmc;

int
main()
{
    // 1. A "trained" extreme classifier: 8192 categories, 64-dim hidden.
    workloads::SyntheticConfig model_cfg;
    model_cfg.categories = 8192;
    model_cfg.hidden = 64;
    workloads::SyntheticModel model(model_cfg);
    std::printf("classifier: %zu categories x %zu dims (%.1f MB FP32)\n",
                model.classifier().categories(), model.classifier().hidden(),
                model.classifier().parameterBytes() / 1e6);

    // 2. Offload options: 0.25 reduction scale, INT4, ~128 candidates.
    runtime::ClassifierOptions options;
    options.candidates = 128;
    runtime::EnmcClassifier clf(model.classifier(),
                                runtime::classifierOptionsFromEnv(options));

    // 3. Calibrate on sampled hidden vectors (stand-ins for the
    //    activations your front-end model produces on training data).
    Rng rng = model.makeRng(7);
    const auto train_h = model.sampleHiddenBatch(rng, 256);
    const auto val_h = model.sampleHiddenBatch(rng, 64);
    const auto report = clf.calibrate(train_h, val_h);
    std::printf("calibrated in %zu epochs, val MSE %.3f, screener %.1f KB "
                "(%.1fx smaller)\n",
                report.epochs.size(), report.final_val_mse,
                clf.screener().parameterBytes() / 1e3,
                double(model.classifier().parameterBytes()) /
                    clf.screener().parameterBytes());

    // 4. Classify a batch on the ENMC rank model.
    const auto h_batch = model.sampleHiddenBatch(rng, 4);
    const auto outputs = clf.forward(h_batch, 5);
    const auto exact = clf.forwardFull(h_batch, 5);

    for (size_t i = 0; i < outputs.size(); ++i) {
        std::printf("item %zu: %zu candidates computed accurately; top-5:",
                    i, outputs[i].candidates.size());
        for (uint32_t c : outputs[i].topk)
            std::printf(" %u", c);
        std::printf("  (exact top-1: %u %s)\n", exact[i].topk[0],
                    exact[i].topk[0] == outputs[i].topk[0] ? "MATCH"
                                                           : "DIFFERS");
    }
    std::printf("representative rank: %llu DDR cycles (%.1f us)\n",
                static_cast<unsigned long long>(clf.lastRankCycles()),
                cyclesToSeconds(clf.lastRankCycles(), 1200e6) * 1e6);
    return 0;
}
