/**
 * @file
 * Large-scale recommendation scenario (the paper's XMLCNN-670K workload):
 * multi-label classification with sigmoid outputs, where the application
 * needs the top-K products per user.
 *
 * Runs the ENMC system end to end — screener calibration, candidates-only
 * classification on the rank model, P@K against exact classification —
 * and then projects the timing to the full 670K-category deployment.
 */

#include <cstdio>

#include "runtime/api.h"
#include "tensor/topk.h"
#include "workloads/registry.h"

using namespace enmc;

int
main()
{
    const workloads::Workload wl = workloads::findWorkload("XMLCNN-670K");
    std::printf("workload: %s (%s), %llu labels, sigmoid outputs\n",
                wl.abbr.c_str(), wl.dataset.c_str(),
                static_cast<unsigned long long>(wl.categories));

    // Functional-scale model (timing below uses full scale).
    workloads::SyntheticModel model(wl.functionalConfig());
    Rng rng = model.makeRng(3);

    runtime::ClassifierOptions options;
    options.candidates = 256; // ~6% of the functional label space
    runtime::EnmcClassifier clf(model.classifier(),
                                runtime::classifierOptionsFromEnv(options));
    clf.calibrate(model.sampleHiddenBatch(rng, 256),
                  model.sampleHiddenBatch(rng, 64));

    // Serve a batch of "users".
    const size_t k = 5;
    const auto users = model.sampleHiddenBatch(rng, 16);
    const auto recs = clf.forward(users, k);
    const auto exact = clf.forwardFull(users, k);

    double p_at_k = 0.0;
    for (size_t u = 0; u < users.size(); ++u) {
        p_at_k += tensor::recall(recs[u].topk, exact[u].topk);
        if (u < 4) {
            std::printf("user %zu recommendations:", u);
            for (uint32_t item : recs[u].topk)
                std::printf(" %u(%.3f)", item,
                            recs[u].probabilities[item]);
            std::printf("\n");
        }
    }
    std::printf("P@%zu vs exact classification: %.1f%% over %zu users\n", k,
                100.0 * p_at_k / users.size(), users.size());

    // Full-scale deployment timing on the Table 3 system.
    runtime::EnmcSystem system{runtime::SystemConfig{}};
    runtime::JobSpec job;
    job.categories = wl.categories;
    job.hidden = wl.hidden;
    job.reduced = wl.hidden / 4;
    job.batch = 1;
    job.candidates = wl.nmpCandidates();
    job.sigmoid = true;
    const auto t = system.runTiming(job);
    std::printf("\nfull-scale deployment (8ch x 8 ranks, DDR4-2400):\n");
    std::printf("  classification latency: %.1f us/inference\n",
                t.seconds * 1e6);
    std::printf("  screening traffic %.2f MB + candidate traffic %.2f MB "
                "per inference (all ranks)\n",
                t.totalScreenBytes() / 1e6, t.totalExecBytes() / 1e6);
    std::printf("  vs %.1f ms full classification on the host CPU\n",
                1e3 * wl.classifierBytes() / (128e9 * 0.75));
    return 0;
}
